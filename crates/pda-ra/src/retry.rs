//! Timeout/retry with exponential backoff for `@P` message legs.
//!
//! The executable protocol evaluator in [`crate::protocol`] assumed a
//! perfect transport: every `@P` request and reply arrived. Petz &
//! Alexander's "Faithful Execution of Remote Attestation Protocols"
//! stresses that protocol *execution* must survive a hostile
//! environment, not just verify in a clean one — so this module models
//! the transport explicitly. A [`FlakyChannel`] (seeded, deterministic)
//! decides whether each leg is delivered; a [`RetrySession`] wraps it
//! with a [`RetryPolicy`] that retransmits lost legs after an
//! exponentially backed-off timeout, until the budget is exhausted and
//! the run fails with [`ProtocolError::Timeout`].
//!
//! Retransmissions are visible three ways: [`RunStats::retries`] /
//! [`RunStats::backoff_ns`], the extra `messages`/`bytes` each
//! retransmitted leg accounts, and the `ra.retry.*` telemetry counters
//! (`legs`, `retransmits`, `timeouts`) when a handle is attached.
//!
//! Request-leg loss retries *before* the remote phrase runs; reply-leg
//! loss re-sends the already-computed reply without re-executing the
//! remote phrase — the model's legs are idempotent the way a real
//! store-and-retransmit buffer makes them.

use crate::protocol::{ProtocolError, RunStats};
use pda_copland::ast::Place;
use pda_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retransmit budget and backoff shape for one protocol run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per leg after the first attempt
    /// (0 = fire-and-forget: any loss is an immediate timeout).
    pub max_retries: u32,
    /// Timeout before the first retransmit, in nanoseconds.
    pub base_timeout_ns: u64,
    /// Timeout multiplier per successive retransmit.
    pub backoff: u32,
    /// Deterministic jitter amplitude in percent (0 = none): each wait
    /// is scaled by a seeded factor in `[100-j, 100+j]%` so a fleet of
    /// federated clients sharing one policy doesn't retransmit in
    /// lockstep after a correlated loss burst. The backoff *base* keeps
    /// growing un-jittered, so jitter never compounds across attempts.
    pub jitter_pct: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_timeout_ns: 1_000_000, // 1 ms
            backoff: 2,
            jitter_pct: 0,
        }
    }
}

impl RetryPolicy {
    /// The no-retry baseline.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Builder: enable backoff jitter with amplitude `pct` (clamped to
    /// 100 — a wait can shrink to zero but never go negative).
    pub fn with_jitter(mut self, pct: u32) -> RetryPolicy {
        self.jitter_pct = pct.min(100);
        self
    }
}

/// A deterministic lossy message channel: each leg is independently
/// lost with probability `loss`, decided by a seeded PRNG.
#[derive(Clone, Debug)]
pub struct FlakyChannel {
    loss: f64,
    rng: StdRng,
}

impl FlakyChannel {
    /// Channel losing each leg with probability `loss` under `seed`.
    pub fn new(seed: u64, loss: f64) -> FlakyChannel {
        assert!((0.0..=1.0).contains(&loss), "loss={loss} not a probability");
        FlakyChannel {
            loss,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A channel that never loses anything.
    pub fn perfect() -> FlakyChannel {
        FlakyChannel::new(0, 0.0)
    }

    /// Sample one transmission attempt.
    pub fn delivers(&mut self) -> bool {
        self.loss == 0.0 || !self.rng.gen_bool(self.loss)
    }
}

/// The retry layer threaded through one protocol run.
#[derive(Clone)]
pub struct RetrySession {
    /// Budget and backoff shape.
    pub policy: RetryPolicy,
    /// The transport model.
    pub channel: FlakyChannel,
    /// Optional telemetry for `ra.retry.*` counters.
    pub telemetry: Telemetry,
    /// Optional causal trace context: when set (and telemetry is
    /// enabled), every retransmission and timeout is emitted as a
    /// trace-stamped instant event, making channel backoff visible in
    /// the flight recorder's per-trace timeline.
    pub trace: Option<pda_telemetry::TraceCtx>,
    /// Dedicated PRNG for backoff jitter. Kept separate from the
    /// channel's loss PRNG so enabling jitter never perturbs the
    /// delivery decision stream of an existing seed.
    jitter_rng: StdRng,
}

impl std::fmt::Debug for RetrySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrySession")
            .field("policy", &self.policy)
            .field("channel", &self.channel)
            .finish_non_exhaustive()
    }
}

impl RetrySession {
    /// Session over `channel` with `policy`; telemetry off, jitter
    /// seeded at 0 (override with [`RetrySession::with_jitter_seed`] to
    /// desynchronize clients sharing a policy).
    pub fn new(policy: RetryPolicy, channel: FlakyChannel) -> RetrySession {
        RetrySession {
            policy,
            channel,
            telemetry: Telemetry::off(),
            trace: None,
            jitter_rng: StdRng::seed_from_u64(0),
        }
    }

    /// Attach a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> RetrySession {
        self.telemetry = telemetry;
        self
    }

    /// Attach a trace context; see the `trace` field.
    pub fn with_trace(mut self, ctx: pda_telemetry::TraceCtx) -> RetrySession {
        self.trace = Some(ctx);
        self
    }

    /// Re-seed the jitter PRNG: same seed, same backoff waits — the
    /// seed-stability contract federated clients rely on.
    pub fn with_jitter_seed(mut self, seed: u64) -> RetrySession {
        self.jitter_rng = StdRng::seed_from_u64(seed);
        self
    }

    fn count(&self, name: &str) {
        if let Some(reg) = self.telemetry.registry() {
            reg.counter(name).inc();
        }
    }

    /// Emit a trace-stamped retry event (only when both telemetry and
    /// a trace context are attached).
    fn trace_event(&self, name: &str, place: &Place, extra: &[(&str, u64)]) {
        if !self.telemetry.enabled() {
            return;
        }
        if let Some(ctx) = &self.trace {
            let mut fields = ctx.fields();
            fields.push(("place".to_string(), format!("{place}").into()));
            for (k, v) in extra {
                fields.push((k.to_string(), (*v).into()));
            }
            self.telemetry.event(name, fields);
        }
    }

    /// Drive one message leg of `bytes` bytes toward `place`:
    /// retransmit on loss with exponential backoff until delivered or
    /// the budget is spent. Every retransmission accounts an extra
    /// message carrying the same bytes.
    pub(crate) fn leg(
        &mut self,
        place: &Place,
        bytes: u64,
        stats: &mut RunStats,
    ) -> Result<(), ProtocolError> {
        self.count("ra.retry.legs");
        let mut timeout = self.policy.base_timeout_ns;
        for attempt in 0..=self.policy.max_retries {
            if self.channel.delivers() {
                return Ok(());
            }
            if attempt == self.policy.max_retries {
                break;
            }
            let wait = if self.policy.jitter_pct == 0 {
                timeout
            } else {
                let j = u64::from(self.policy.jitter_pct.min(100));
                let pct: u64 = self.jitter_rng.gen_range(100 - j..=100 + j);
                (timeout / 100).saturating_mul(pct) + (timeout % 100) * pct / 100
            };
            stats.retries += 1;
            stats.backoff_ns += wait;
            stats.messages += 1;
            stats.bytes += bytes;
            self.count("ra.retry.retransmits");
            self.trace_event(
                "ra.retry.backoff",
                place,
                &[("attempt", u64::from(attempt) + 1), ("wait_ns", wait)],
            );
            timeout = timeout.saturating_mul(self.policy.backoff as u64);
        }
        self.count("ra.retry.timeouts");
        self.trace_event(
            "ra.retry.timeout",
            place,
            &[("attempts", u64::from(self.policy.max_retries) + 1)],
        );
        Err(ProtocolError::Timeout(place.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(n: &str) -> Place {
        n.into()
    }

    #[test]
    fn perfect_channel_never_retries() {
        let mut s = RetrySession::new(RetryPolicy::default(), FlakyChannel::perfect());
        let mut stats = RunStats::default();
        for _ in 0..100 {
            s.leg(&place("p"), 64, &mut stats).unwrap();
        }
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.messages, 0, "no retransmits, no extra messages");
    }

    #[test]
    fn retries_recover_then_budget_exhausts() {
        // p = 1: every attempt lost; budget 2 → 2 retransmits, then fail.
        let mut s = RetrySession::new(
            RetryPolicy {
                max_retries: 2,
                base_timeout_ns: 100,
                backoff: 3,
                jitter_pct: 0,
            },
            FlakyChannel::new(7, 1.0),
        );
        let mut stats = RunStats::default();
        let err = s.leg(&place("q"), 10, &mut stats).unwrap_err();
        assert_eq!(err, ProtocolError::Timeout(place("q")));
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.backoff_ns, 100 + 300, "exponential backoff");
        assert_eq!((stats.messages, stats.bytes), (2, 20));
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = || {
            let mut s = RetrySession::new(RetryPolicy::default(), FlakyChannel::new(42, 0.3));
            let mut stats = RunStats::default();
            let mut failures = 0u64;
            for _ in 0..200 {
                if s.leg(&place("p"), 8, &mut stats).is_err() {
                    failures += 1;
                }
            }
            (stats, failures)
        };
        let (s1, f1) = run();
        let (s2, f2) = run();
        assert_eq!((s1, f1), (s2, f2), "same seed, same decision stream");
        assert!(s1.retries > 0, "p=0.3 over 200 legs must retransmit");
    }

    #[test]
    fn jitter_waits_are_seed_stable_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_timeout_ns: 1_000,
            backoff: 3,
            jitter_pct: 20,
        };
        let run = |seed: u64| {
            // p = 1: both retransmits fire, then the leg times out.
            let mut s = RetrySession::new(policy, FlakyChannel::new(7, 1.0)).with_jitter_seed(seed);
            let mut stats = RunStats::default();
            s.leg(&place("q"), 10, &mut stats).unwrap_err();
            stats
        };
        let a = run(1);
        assert_eq!(a, run(1), "same jitter seed, same backoff_ns");
        // RunStats threading is unchanged: retries/messages/bytes still
        // account every retransmission.
        assert_eq!((a.retries, a.messages, a.bytes), (2, 2, 20));
        // Each wait stays within ±20% of its un-jittered value
        // (1000 then 3000 → total in [3200, 4800]).
        assert!(
            (3_200..=4_800).contains(&a.backoff_ns),
            "backoff_ns={} outside jitter envelope",
            a.backoff_ns
        );
        // Different seeds desynchronize: some pair of the fleet differs.
        let totals: Vec<u64> = (0..8).map(|s| run(s).backoff_ns).collect();
        assert!(
            totals.iter().any(|t| *t != totals[0]),
            "8 seeds all landed on {}: jitter is not desynchronizing",
            totals[0]
        );
    }

    #[test]
    fn zero_jitter_keeps_exact_exponential_waits() {
        // jitter_pct = 0 must not draw from the jitter PRNG at all:
        // waits match the pre-jitter arithmetic exactly.
        let mut s = RetrySession::new(
            RetryPolicy::default().with_jitter(0),
            FlakyChannel::new(7, 1.0),
        );
        let mut stats = RunStats::default();
        s.leg(&place("q"), 1, &mut stats).unwrap_err();
        assert_eq!(stats.backoff_ns, 1_000_000 + 2_000_000 + 4_000_000);
    }

    #[test]
    fn telemetry_counters_track_legs() {
        let tel = Telemetry::collecting();
        let mut s = RetrySession::new(RetryPolicy::none(), FlakyChannel::new(5, 0.5))
            .with_telemetry(tel.clone());
        let mut stats = RunStats::default();
        let mut timeouts = 0u64;
        for _ in 0..50 {
            if s.leg(&place("p"), 8, &mut stats).is_err() {
                timeouts += 1;
            }
        }
        let reg = tel.registry().unwrap();
        assert_eq!(reg.counter("ra.retry.legs").get(), 50);
        assert_eq!(reg.counter("ra.retry.timeouts").get(), timeouts);
        assert_eq!(reg.counter("ra.retry.retransmits").get(), 0);
        assert!(timeouts > 0, "p=0.5 with no budget must time out");
    }
}
