//! Timeout/retry with exponential backoff for `@P` message legs.
//!
//! The executable protocol evaluator in [`crate::protocol`] assumed a
//! perfect transport: every `@P` request and reply arrived. Petz &
//! Alexander's "Faithful Execution of Remote Attestation Protocols"
//! stresses that protocol *execution* must survive a hostile
//! environment, not just verify in a clean one — so this module models
//! the transport explicitly. A [`FlakyChannel`] (seeded, deterministic)
//! decides whether each leg is delivered; a [`RetrySession`] wraps it
//! with a [`RetryPolicy`] that retransmits lost legs after an
//! exponentially backed-off timeout, until the budget is exhausted and
//! the run fails with [`ProtocolError::Timeout`].
//!
//! Retransmissions are visible three ways: [`RunStats::retries`] /
//! [`RunStats::backoff_ns`], the extra `messages`/`bytes` each
//! retransmitted leg accounts, and the `ra.retry.*` telemetry counters
//! (`legs`, `retransmits`, `timeouts`) when a handle is attached.
//!
//! Request-leg loss retries *before* the remote phrase runs; reply-leg
//! loss re-sends the already-computed reply without re-executing the
//! remote phrase — the model's legs are idempotent the way a real
//! store-and-retransmit buffer makes them.

use crate::protocol::{ProtocolError, RunStats};
use pda_copland::ast::Place;
use pda_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retransmit budget and backoff shape for one protocol run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per leg after the first attempt
    /// (0 = fire-and-forget: any loss is an immediate timeout).
    pub max_retries: u32,
    /// Timeout before the first retransmit, in nanoseconds.
    pub base_timeout_ns: u64,
    /// Timeout multiplier per successive retransmit.
    pub backoff: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_timeout_ns: 1_000_000, // 1 ms
            backoff: 2,
        }
    }
}

impl RetryPolicy {
    /// The no-retry baseline.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// A deterministic lossy message channel: each leg is independently
/// lost with probability `loss`, decided by a seeded PRNG.
#[derive(Clone, Debug)]
pub struct FlakyChannel {
    loss: f64,
    rng: StdRng,
}

impl FlakyChannel {
    /// Channel losing each leg with probability `loss` under `seed`.
    pub fn new(seed: u64, loss: f64) -> FlakyChannel {
        assert!((0.0..=1.0).contains(&loss), "loss={loss} not a probability");
        FlakyChannel {
            loss,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A channel that never loses anything.
    pub fn perfect() -> FlakyChannel {
        FlakyChannel::new(0, 0.0)
    }

    /// Sample one transmission attempt.
    pub fn delivers(&mut self) -> bool {
        self.loss == 0.0 || !self.rng.gen_bool(self.loss)
    }
}

/// The retry layer threaded through one protocol run.
#[derive(Clone)]
pub struct RetrySession {
    /// Budget and backoff shape.
    pub policy: RetryPolicy,
    /// The transport model.
    pub channel: FlakyChannel,
    /// Optional telemetry for `ra.retry.*` counters.
    pub telemetry: Telemetry,
}

impl std::fmt::Debug for RetrySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrySession")
            .field("policy", &self.policy)
            .field("channel", &self.channel)
            .finish_non_exhaustive()
    }
}

impl RetrySession {
    /// Session over `channel` with `policy`; telemetry off.
    pub fn new(policy: RetryPolicy, channel: FlakyChannel) -> RetrySession {
        RetrySession {
            policy,
            channel,
            telemetry: Telemetry::off(),
        }
    }

    /// Attach a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> RetrySession {
        self.telemetry = telemetry;
        self
    }

    fn count(&self, name: &str) {
        if let Some(reg) = self.telemetry.registry() {
            reg.counter(name).inc();
        }
    }

    /// Drive one message leg of `bytes` bytes toward `place`:
    /// retransmit on loss with exponential backoff until delivered or
    /// the budget is spent. Every retransmission accounts an extra
    /// message carrying the same bytes.
    pub(crate) fn leg(
        &mut self,
        place: &Place,
        bytes: u64,
        stats: &mut RunStats,
    ) -> Result<(), ProtocolError> {
        self.count("ra.retry.legs");
        let mut timeout = self.policy.base_timeout_ns;
        for attempt in 0..=self.policy.max_retries {
            if self.channel.delivers() {
                return Ok(());
            }
            if attempt == self.policy.max_retries {
                break;
            }
            stats.retries += 1;
            stats.backoff_ns += timeout;
            stats.messages += 1;
            stats.bytes += bytes;
            self.count("ra.retry.retransmits");
            timeout = timeout.saturating_mul(self.policy.backoff as u64);
        }
        self.count("ra.retry.timeouts");
        Err(ProtocolError::Timeout(place.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(n: &str) -> Place {
        n.into()
    }

    #[test]
    fn perfect_channel_never_retries() {
        let mut s = RetrySession::new(RetryPolicy::default(), FlakyChannel::perfect());
        let mut stats = RunStats::default();
        for _ in 0..100 {
            s.leg(&place("p"), 64, &mut stats).unwrap();
        }
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.messages, 0, "no retransmits, no extra messages");
    }

    #[test]
    fn retries_recover_then_budget_exhausts() {
        // p = 1: every attempt lost; budget 2 → 2 retransmits, then fail.
        let mut s = RetrySession::new(
            RetryPolicy {
                max_retries: 2,
                base_timeout_ns: 100,
                backoff: 3,
            },
            FlakyChannel::new(7, 1.0),
        );
        let mut stats = RunStats::default();
        let err = s.leg(&place("q"), 10, &mut stats).unwrap_err();
        assert_eq!(err, ProtocolError::Timeout(place("q")));
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.backoff_ns, 100 + 300, "exponential backoff");
        assert_eq!((stats.messages, stats.bytes), (2, 20));
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = || {
            let mut s = RetrySession::new(RetryPolicy::default(), FlakyChannel::new(42, 0.3));
            let mut stats = RunStats::default();
            let mut failures = 0u64;
            for _ in 0..200 {
                if s.leg(&place("p"), 8, &mut stats).is_err() {
                    failures += 1;
                }
            }
            (stats, failures)
        };
        let (s1, f1) = run();
        let (s2, f2) = run();
        assert_eq!((s1, f1), (s2, f2), "same seed, same decision stream");
        assert!(s1.retries > 0, "p=0.3 over 200 legs must retransmit");
    }

    #[test]
    fn telemetry_counters_track_legs() {
        let tel = Telemetry::collecting();
        let mut s = RetrySession::new(RetryPolicy::none(), FlakyChannel::new(5, 0.5))
            .with_telemetry(tel.clone());
        let mut stats = RunStats::default();
        let mut timeouts = 0u64;
        for _ in 0..50 {
            if s.leg(&place("p"), 8, &mut stats).is_err() {
                timeouts += 1;
            }
        }
        let reg = tel.registry().unwrap();
        assert_eq!(reg.counter("ra.retry.legs").get(), 50);
        assert_eq!(reg.counter("ra.retry.timeouts").get(), timeouts);
        assert_eq!(reg.counter("ra.retry.retransmits").get(), 0);
        assert!(timeouts > 0, "p=0.5 with no budget must time out");
    }
}
