//! # pda-ra
//!
//! The remote-attestation core (§4, Fig. 1): concrete, crypto-backed
//! execution of Copland phrases and appraisal of the resulting evidence.
//!
//! * [`evidence`] — concrete evidence terms ([`evidence::Ev`]) with a
//!   canonical injective encoding for hashing and signing.
//! * [`runtime`] — per-place state: measurable components, attestation
//!   sources, signers, certificate stores, and adversary corruption
//!   hooks ([`runtime::PlaceRuntime`], [`runtime::Environment`]).
//! * [`protocol`] — the executable evaluator: measurements read real
//!   component state, `!` signs, `#` hashes, `@P` exchanges counted
//!   messages ([`protocol::run_request`]).
//! * [`mod@appraise`] — the Appraiser: checks evidence shape against the
//!   policy's evidence type, verifies signatures against the key
//!   registry, compares measurements and attested sources to golden
//!   values, validates nonce binding ([`appraise::appraise`]).
//! * [`semantic`] — semantic appraisal: the
//!   [`semantic::RequireLintClean`] policy atom runs the `pda-analyze`
//!   static analyzer over a claimed dataplane program, so a verdict can
//!   reject rogue behavior even when the program's hash is on no
//!   blacklist.
//!
//! Together these instantiate Fig. 1: the Relying Party issues a Claim
//! (a Copland request + nonce), the Attester produces Evidence
//! (`run_request`), the Appraiser produces an Attestation Result
//! (`appraise`).

pub mod appraise;
pub mod evidence;
pub mod protocol;
pub mod retry;
pub mod runtime;
pub mod semantic;

pub use appraise::{appraise, AppraisalResult, AppraiserService, Failure};
pub use evidence::Ev;
pub use protocol::{
    run_phrase, run_request, run_request_retrying, ProtocolError, RunReport, RunStats,
};
pub use retry::{FlakyChannel, RetryPolicy, RetrySession};
pub use runtime::{Component, Environment, PlaceRuntime};
pub use semantic::{RequireLintClean, SemanticAppraisal};
