//! Concrete execution of Copland requests over place runtimes.
//!
//! This is the executable counterpart of the symbolic evaluator in
//! `pda-copland`: the same recursion, but every ASP performs real work —
//! measurements read component state, `!` produces actual signatures,
//! `#` hashes canonical encodings, and `@P […]` is accounted as a pair of
//! protocol messages (request + reply) whose bytes are tallied. The
//! message/byte accounting is what experiments E2 (in-band vs
//! out-of-band) and E12 (wire overhead) report.

use crate::evidence::Ev;
use crate::retry::RetrySession;
use crate::runtime::Environment;
use pda_copland::ast::{Asp, Phrase, Place, Request, Sp};
use pda_crypto::digest::Digest;
use pda_crypto::nonce::Nonce;
use std::fmt;

/// Cost/traffic statistics for one protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Protocol messages exchanged (one request + one reply per `@P`,
    /// plus one per retransmitted leg under a retry session).
    pub messages: u64,
    /// Total evidence bytes carried by those messages.
    pub bytes: u64,
    /// Signatures created.
    pub signatures: u64,
    /// Measurements taken.
    pub measurements: u64,
    /// Hash operations.
    pub hashes: u64,
    /// Service invocations.
    pub services: u64,
    /// Message legs retransmitted after loss (retry sessions only).
    pub retries: u64,
    /// Total nanoseconds spent waiting in retransmit backoff.
    pub backoff_ns: u64,
}

/// Errors during protocol execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// `@P` references a place with no runtime.
    UnknownPlace(Place),
    /// A measurement referenced a component that does not exist.
    UnknownComponent {
        /// Place searched.
        place: Place,
        /// Missing component.
        component: String,
    },
    /// The signer ran out of one-time keys.
    SigningFailed(Place),
    /// `retrieve(n)` found nothing stored under the nonce.
    NothingStored(Nonce),
    /// A nonce-keyed service ran but the request has no nonce.
    NoNonce,
    /// A message leg to/from the place was lost and the retry budget
    /// ran out (only under a [`RetrySession`]).
    Timeout(Place),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownPlace(p) => write!(f, "no runtime for place {p}"),
            ProtocolError::UnknownComponent { place, component } => {
                write!(f, "component {component} not found at {place}")
            }
            ProtocolError::SigningFailed(p) => write!(f, "signing failed at {p}"),
            ProtocolError::NothingStored(n) => write!(f, "nothing stored under nonce {n}"),
            ProtocolError::NoNonce => write!(f, "nonce-keyed service without a request nonce"),
            ProtocolError::Timeout(p) => {
                write!(f, "message leg to {p} lost; retry budget exhausted")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Result of running a request.
#[derive(Debug)]
pub struct RunReport {
    /// The evidence produced.
    pub evidence: Ev,
    /// Traffic and cost statistics.
    pub stats: RunStats,
}

/// Execute `req` against `env`. `nonce` is bound to the request's nonce
/// parameter when present (becomes the initial evidence, per Helble et
/// al.'s convention and the paper's equation (3)).
pub fn run_request(
    req: &Request,
    env: &mut Environment,
    nonce: Option<Nonce>,
) -> Result<RunReport, ProtocolError> {
    run_request_inner(req, env, nonce, None)
}

/// [`run_request`] over a lossy transport: every `@P` request/reply leg
/// passes through the session's [`crate::retry::FlakyChannel`], with
/// lost legs retransmitted under the session's retry policy. A leg that
/// exhausts its budget fails the run with [`ProtocolError::Timeout`].
pub fn run_request_retrying(
    req: &Request,
    env: &mut Environment,
    nonce: Option<Nonce>,
    session: &mut RetrySession,
) -> Result<RunReport, ProtocolError> {
    run_request_inner(req, env, nonce, Some(session))
}

fn run_request_inner(
    req: &Request,
    env: &mut Environment,
    nonce: Option<Nonce>,
    retry: Option<&mut RetrySession>,
) -> Result<RunReport, ProtocolError> {
    let init = match (req.params.iter().any(|p| p == "n"), nonce) {
        (true, Some(n)) => Ev::Nonce(n),
        _ => Ev::Empty,
    };
    let mut stats = RunStats::default();
    let evidence = eval(&req.phrase, &req.rp, init, env, nonce, &mut stats, retry)?;
    Ok(RunReport { evidence, stats })
}

/// Execute a bare phrase at `place`.
pub fn run_phrase(
    phrase: &Phrase,
    place: &Place,
    init: Ev,
    env: &mut Environment,
    nonce: Option<Nonce>,
) -> Result<RunReport, ProtocolError> {
    let mut stats = RunStats::default();
    let evidence = eval(phrase, place, init, env, nonce, &mut stats, None)?;
    Ok(RunReport { evidence, stats })
}

fn split(sp: Sp, e: &Ev) -> Ev {
    match sp {
        Sp::Pass => e.clone(),
        Sp::Drop => Ev::Empty,
    }
}

fn eval(
    phrase: &Phrase,
    place: &Place,
    e: Ev,
    env: &mut Environment,
    nonce: Option<Nonce>,
    stats: &mut RunStats,
    mut retry: Option<&mut RetrySession>,
) -> Result<Ev, ProtocolError> {
    match phrase {
        Phrase::Asp(asp) => eval_asp(asp, place, e, env, nonce, stats),
        Phrase::At(q, inner) => {
            if !env.places.contains_key(q) {
                return Err(ProtocolError::UnknownPlace(q.clone()));
            }
            // Request message carries accrued evidence to q… Lost
            // request legs retransmit *before* the remote phrase runs.
            let req_bytes = e.wire_size() as u64;
            stats.messages += 1;
            stats.bytes += req_bytes;
            if let Some(session) = retry.as_deref_mut() {
                session.leg(q, req_bytes, stats)?;
            }
            let out = eval(inner, q, e, env, nonce, stats, retry.as_deref_mut())?;
            // …reply carries the result back. A lost reply re-sends the
            // already-computed result; the remote phrase does not rerun.
            let reply_bytes = out.wire_size() as u64;
            stats.messages += 1;
            stats.bytes += reply_bytes;
            if let Some(session) = retry.as_deref_mut() {
                session.leg(q, reply_bytes, stats)?;
            }
            Ok(out)
        }
        Phrase::Arrow(l, r) => {
            let mid = eval(l, place, e, env, nonce, stats, retry.as_deref_mut())?;
            eval(r, place, mid, env, nonce, stats, retry)
        }
        Phrase::BrSeq(sl, sr, l, r) => {
            let le = eval(
                l,
                place,
                split(*sl, &e),
                env,
                nonce,
                stats,
                retry.as_deref_mut(),
            )?;
            let re = eval(r, place, split(*sr, &e), env, nonce, stats, retry)?;
            Ok(Ev::Seq(Box::new(le), Box::new(re)))
        }
        Phrase::BrPar(sl, sr, l, r) => {
            let le = eval(
                l,
                place,
                split(*sl, &e),
                env,
                nonce,
                stats,
                retry.as_deref_mut(),
            )?;
            let re = eval(r, place, split(*sr, &e), env, nonce, stats, retry)?;
            Ok(Ev::Par(Box::new(le), Box::new(re)))
        }
    }
}

fn eval_asp(
    asp: &Asp,
    place: &Place,
    e: Ev,
    env: &mut Environment,
    nonce: Option<Nonce>,
    stats: &mut RunStats,
) -> Result<Ev, ProtocolError> {
    match asp {
        Asp::Measure {
            measurer,
            target_place,
            target,
        } => {
            stats.measurements += 1;
            // Is the measurer itself corrupted at its place? A corrupted
            // measurer lies: it reports the golden value.
            let measurer_lies = env
                .places
                .get(place)
                .map(|rt| rt.corrupt_measurers.iter().any(|m| m == measurer))
                .unwrap_or(false);
            let rt = env
                .places
                .get(target_place)
                .ok_or_else(|| ProtocolError::UnknownPlace(target_place.clone()))?;
            let component =
                rt.components
                    .get(target)
                    .ok_or_else(|| ProtocolError::UnknownComponent {
                        place: target_place.clone(),
                        component: target.clone(),
                    })?;
            let observed = if measurer_lies {
                component.golden
            } else {
                component.observed()
            };
            Ok(Ev::Measurement {
                measurer: measurer.clone(),
                target_place: target_place.clone(),
                target: target.clone(),
                place: place.clone(),
                observed,
                sub: Box::new(e),
            })
        }
        Asp::Sign => {
            stats.signatures += 1;
            let msg = e.encode();
            let rt = env
                .places
                .get_mut(place)
                .ok_or_else(|| ProtocolError::UnknownPlace(place.clone()))?;
            let sig = rt
                .signer
                .sign(&msg)
                .map_err(|_| ProtocolError::SigningFailed(place.clone()))?;
            Ok(Ev::Signature {
                place: place.clone(),
                sig,
                sub: Box::new(e),
            })
        }
        Asp::Hash => {
            stats.hashes += 1;
            Ok(Ev::Hashed {
                place: place.clone(),
                digest: e.digest(),
            })
        }
        Asp::Copy => Ok(e),
        Asp::Null => Ok(Ev::Empty),
        Asp::Service { name, args } => {
            stats.services += 1;
            service(name, args, place, e, env, nonce)
        }
    }
}

/// The attest payload for one argument: source digest when the place has
/// such a source, a literal marker digest otherwise. Mirrored by
/// [`crate::appraise::build_expected`].
pub fn attest_arg_payload(sources: Option<&Vec<u8>>, arg: &str) -> [u8; 32] {
    match sources {
        Some(value) => Digest::of(value).0,
        None => Digest::of_parts(&[b"literal:", arg.as_bytes()]).0,
    }
}

fn service(
    name: &str,
    args: &[String],
    place: &Place,
    e: Ev,
    env: &mut Environment,
    nonce: Option<Nonce>,
) -> Result<Ev, ProtocolError> {
    let mk = |payload: Vec<u8>, sub: Ev| Ev::Service {
        name: name.to_string(),
        args: args.to_vec(),
        place: place.clone(),
        payload,
        sub: Box::new(sub),
    };
    match name {
        "attest" => {
            let rt = env
                .places
                .get(place)
                .ok_or_else(|| ProtocolError::UnknownPlace(place.clone()))?;
            let mut payload = Vec::with_capacity(args.len() * 32);
            for a in args {
                payload.extend_from_slice(&attest_arg_payload(rt.attest_sources.get(a), a));
            }
            Ok(mk(payload, e))
        }
        "appraise" => {
            // In-protocol appraisal: verify all signatures in the
            // accrued evidence (full appraisal with golden comparison is
            // the RP-side `pda_ra::appraise::appraise`).
            let ok = crate::appraise::verify_signatures(&e, &env.registry);
            Ok(mk(vec![u8::from(ok)], e))
        }
        "certify" => {
            let n = nonce.ok_or(ProtocolError::NoNonce);
            // The paper's eq (4) uses certify without an explicit nonce;
            // allow nonce-less certificates bound only to the evidence.
            let mut payload = Vec::with_capacity(40);
            if args.iter().any(|a| a == "n") {
                payload.extend_from_slice(&n?.to_bytes());
            }
            payload.extend_from_slice(e.digest().as_bytes());
            Ok(mk(payload, e))
        }
        "store" => {
            let n = nonce.ok_or(ProtocolError::NoNonce)?;
            let bytes = e.encode();
            let rt = env
                .places
                .get_mut(place)
                .ok_or_else(|| ProtocolError::UnknownPlace(place.clone()))?;
            rt.store.insert(n, bytes);
            Ok(mk(Vec::new(), e))
        }
        "retrieve" => {
            let n = nonce.ok_or(ProtocolError::NoNonce)?;
            let rt = env
                .places
                .get(place)
                .ok_or_else(|| ProtocolError::UnknownPlace(place.clone()))?;
            let stored = rt
                .store
                .get(&n)
                .ok_or(ProtocolError::NothingStored(n))?
                .clone();
            Ok(mk(stored, Ev::Empty))
        }
        _ => {
            // Unknown services are deterministic transforms of their
            // input (generic `C -> D` processing functions).
            let mut h = Vec::new();
            h.extend_from_slice(b"svc:");
            h.extend_from_slice(name.as_bytes());
            for a in args {
                h.extend_from_slice(a.as_bytes());
                h.push(0);
            }
            h.extend_from_slice(&e.encode());
            Ok(mk(Digest::of(&h).0.to_vec(), e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::PlaceRuntime;
    use pda_copland::ast::examples;
    use pda_copland::parser::parse_request;

    fn bank_env() -> Environment {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("bank"));
        env.add_place(PlaceRuntime::new("ks").with_component("av", b"av-v1"));
        env.add_place(
            PlaceRuntime::new("us")
                .with_component("bmon", b"bmon-v1")
                .with_component("exts", b"exts-clean"),
        );
        env
    }

    #[test]
    fn eq2_runs_and_produces_signed_measurements() {
        let mut env = bank_env();
        let report = run_request(&examples::bank_eq2(), &mut env, None).unwrap();
        assert_eq!(report.evidence.signature_count(), 2);
        assert_eq!(report.evidence.measurements().len(), 2);
        assert_eq!(report.stats.signatures, 2);
        assert_eq!(report.stats.measurements, 2);
        // Two @-hops (ks and us): 4 messages.
        assert_eq!(report.stats.messages, 4);
        assert!(report.stats.bytes > 0);
    }

    #[test]
    fn corrupt_target_changes_observed_digest() {
        let mut env = bank_env();
        let clean = run_request(&examples::bank_eq2(), &mut env, None).unwrap();
        env.place_mut("us").unwrap().corrupt("exts");
        let dirty = run_request(&examples::bank_eq2(), &mut env, None).unwrap();
        assert_ne!(clean.evidence.digest(), dirty.evidence.digest());
    }

    #[test]
    fn corrupt_measurer_lies() {
        let mut env = bank_env();
        env.place_mut("us").unwrap().corrupt("exts");
        env.place_mut("us").unwrap().corrupt("bmon"); // bmon now lies
        let report = run_request(&examples::bank_eq2(), &mut env, None).unwrap();
        // bmon's measurement of exts reports the golden value:
        let meas = report.evidence.measurements();
        let exts_meas = meas
            .iter()
            .find_map(|m| match m {
                Ev::Measurement {
                    target, observed, ..
                } if target == "exts" => Some(*observed),
                _ => None,
            })
            .unwrap();
        assert_eq!(exts_meas, Digest::of(b"exts-clean"), "liar reports golden");
        // but av's measurement of bmon sees the corruption:
        let bmon_meas = meas
            .iter()
            .find_map(|m| match m {
                Ev::Measurement {
                    target, observed, ..
                } if target == "bmon" => Some(*observed),
                _ => None,
            })
            .unwrap();
        assert_ne!(bmon_meas, Digest::of(b"bmon-v1"));
    }

    #[test]
    fn retrying_run_matches_plain_run_on_perfect_channel() {
        use crate::retry::{FlakyChannel, RetryPolicy, RetrySession};
        let mut env = bank_env();
        let plain = run_request(&examples::bank_eq2(), &mut env, None).unwrap();
        let mut env2 = bank_env();
        let mut session = RetrySession::new(RetryPolicy::default(), FlakyChannel::perfect());
        let retried =
            run_request_retrying(&examples::bank_eq2(), &mut env2, None, &mut session).unwrap();
        assert_eq!(plain.stats, retried.stats, "perfect channel adds nothing");
        assert_eq!(plain.evidence.digest(), retried.evidence.digest());
    }

    #[test]
    fn lossy_channel_retries_and_total_loss_times_out() {
        use crate::retry::{FlakyChannel, RetryPolicy, RetrySession};
        // Moderate loss with the default budget: the run completes and
        // the retransmissions are visible in the stats.
        let mut env = bank_env();
        let mut session = RetrySession::new(RetryPolicy::default(), FlakyChannel::new(11, 0.3));
        let report =
            run_request_retrying(&examples::bank_eq2(), &mut env, None, &mut session).unwrap();
        let mut env2 = bank_env();
        let clean = run_request(&examples::bank_eq2(), &mut env2, None).unwrap();
        assert_eq!(report.evidence.digest(), clean.evidence.digest());
        assert!(report.stats.messages >= clean.stats.messages);
        // A dead channel with no budget fails with Timeout at the first @P.
        let mut env3 = bank_env();
        let mut dead = RetrySession::new(RetryPolicy::none(), FlakyChannel::new(0, 1.0));
        let err =
            run_request_retrying(&examples::bank_eq2(), &mut env3, None, &mut dead).unwrap_err();
        assert!(matches!(err, ProtocolError::Timeout(_)));
    }

    #[test]
    fn unknown_place_is_error() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("bank"));
        let err = run_request(&examples::bank_eq2(), &mut env, None).unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownPlace(_)));
    }

    #[test]
    fn unknown_component_is_error() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("p"));
        let req = parse_request("*p : m p ghost").unwrap();
        let err = run_request(&req, &mut env, None).unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownComponent { .. }));
    }

    #[test]
    fn store_and_retrieve_round_trip() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("Appraiser").with_source("x", b"v"));
        let store_req =
            parse_request("*Appraiser<n> : @Appraiser [attest(x) -> store(n)]").unwrap();
        let n = Nonce(77);
        run_request(&store_req, &mut env, Some(n)).unwrap();
        let get_req = parse_request("*RP2<n> : @Appraiser [retrieve(n)]").unwrap();
        let report = run_request(&get_req, &mut env, Some(n)).unwrap();
        let Ev::Service { name, payload, .. } = &report.evidence else {
            panic!("expected retrieve service node")
        };
        assert_eq!(name, "retrieve");
        assert!(!payload.is_empty());
        // Wrong nonce finds nothing.
        let err = run_request(&get_req, &mut env, Some(Nonce(78))).unwrap_err();
        assert_eq!(err, ProtocolError::NothingStored(Nonce(78)));
    }

    #[test]
    fn nonce_keyed_service_without_nonce_fails() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("Appraiser"));
        let req = parse_request("*RP : @Appraiser [store(n)]").unwrap();
        assert_eq!(
            run_request(&req, &mut env, None).unwrap_err(),
            ProtocolError::NoNonce
        );
    }

    #[test]
    fn out_of_band_example_executes() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("RP1"));
        env.add_place(
            PlaceRuntime::new("Switch")
                .with_source("Hardware", b"tofino-sim-v1")
                .with_source("Program", b"firewall_v5.p4"),
        );
        env.add_place(PlaceRuntime::new("Appraiser"));
        let report = run_request(&examples::pera_out_of_band(), &mut env, Some(Nonce(9))).unwrap();
        // Switch signed once, appraiser signed once.
        assert_eq!(report.evidence.signature_count(), 2);
        // Certificate is now stored at the appraiser under the nonce.
        assert!(env
            .place("Appraiser")
            .unwrap()
            .store
            .contains_key(&Nonce(9)));
        // RP2 retrieves it (second expression of eq 3).
        let r2 = run_request(&examples::pera_retrieve(), &mut env, Some(Nonce(9))).unwrap();
        let Ev::Service { payload, .. } = &r2.evidence else {
            panic!()
        };
        assert!(!payload.is_empty());
    }

    #[test]
    fn in_band_example_executes() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("RP1"));
        env.add_place(PlaceRuntime::new("RP2"));
        env.add_place(
            PlaceRuntime::new("Switch")
                .with_source("Hardware", b"tofino-sim-v1")
                .with_source("Program", b"firewall_v5.p4"),
        );
        env.add_place(PlaceRuntime::new("Appraiser"));
        let report = run_request(&examples::pera_in_band(), &mut env, None).unwrap();
        assert_eq!(report.evidence.signature_count(), 2);
        // In-band: Switch, RP2, Appraiser hops = 6 messages.
        assert_eq!(report.stats.messages, 6);
    }

    #[test]
    fn swapped_program_changes_attestation() {
        let mut env = Environment::new();
        env.add_place(PlaceRuntime::new("RP1"));
        env.add_place(
            PlaceRuntime::new("Switch")
                .with_source("Hardware", b"hw")
                .with_source("Program", b"legit.p4"),
        );
        env.add_place(PlaceRuntime::new("Appraiser"));
        let before = run_request(&examples::pera_out_of_band(), &mut env, Some(Nonce(1)))
            .unwrap()
            .evidence
            .digest();
        env.place_mut("Switch")
            .unwrap()
            .swap_source("Program", b"rogue.p4");
        let after = run_request(&examples::pera_out_of_band(), &mut env, Some(Nonce(1)))
            .unwrap()
            .evidence
            .digest();
        assert_ne!(before, after, "rogue program must change the evidence");
    }
}
