//! A tiny blocking server runtime: `TcpListener` + worker pool.
//!
//! crates.io is unreachable from this build environment, so there is no
//! async stack to lean on; instead the service runs on the primitives
//! std already ships. An accept thread pushes connections onto a
//! `Mutex<VecDeque>` guarded by a `Condvar`; a fixed pool of workers
//! pops and serves them.
//!
//! Each connection is **persistent** by default: [`serve_connection`]
//! loops over requests on one socket (HTTP/1.1 keep-alive), consuming
//! exactly the bytes each request used so pipelined follow-ups parse
//! from the same buffer. The loop closes the connection when the
//! client asks (`Connection: close`), when the per-connection request
//! cap is hit, when the idle timeout expires between requests, or when
//! the server is shutting down — the last response in every case
//! carries `Connection: close` so the peer knows. Continuous
//! attestation is a sustained stream of small RPCs, which is exactly
//! the workload one-TCP-connection-per-call serves worst; reuse is
//! what lets E18 throughput clear the connection-per-call baseline.
//!
//! Graceful shutdown: flip an `AtomicBool`, then self-connect once to
//! unblock the accept loop; workers drain the queue and exit when they
//! see the flag with an empty queue. Workers holding kept-alive
//! sockets poll the flag between read slices, so shutdown closes live
//! sessions within one poll interval instead of waiting out their
//! idle timeouts.

use crate::http::{wants_close, HttpParse, HttpRequest, HttpResponse, RequestBuffer};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Mid-request read timeout — bounds how long a slow or hostile
/// client can hold a worker while a request is partially buffered.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Socket poll slice. Reads block at most this long before the worker
/// rechecks the stop flag and its idle/read deadlines, which is what
/// keeps shutdown prompt with long idle timeouts.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Connection-plane policy for [`serve_with`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive
    /// with pipelining). When `false` every response carries
    /// `Connection: close` and the socket is closed after one
    /// exchange.
    pub keep_alive: bool,
    /// Requests served on one connection before the server closes it
    /// (resource-recycling cap; the closing response says so).
    pub max_requests: u64,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            keep_alive: true,
            max_requests: 1024,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeOptions {
    /// One request per connection (the pre-keep-alive behaviour).
    pub fn closing() -> ServeOptions {
        ServeOptions {
            keep_alive: false,
            ..ServeOptions::default()
        }
    }
}

/// Something that turns requests into responses. The service
/// implements this; the runtime stays protocol-agnostic above HTTP.
pub trait Handler: Send + Sync + 'static {
    /// Handle one parsed request.
    fn handle(&self, req: &HttpRequest) -> HttpResponse;

    /// Called once per connection when it closes, with the number of
    /// requests it served — the hook behind the connection-reuse
    /// metrics. Default: ignore.
    fn connection_closed(&self, _requests_served: u64) {}
}

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl ConnQueue {
    fn push(&self, conn: TcpStream) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.push_back(conn);
        self.ready.notify_one();
    }

    /// Pop the next connection, blocking; `None` once stopped and
    /// drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            q = self.ready.wait(q).expect("queue poisoned");
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::stop`].
pub struct ServerHandle {
    /// Address the server actually bound (useful with port 0).
    pub addr: SocketAddr,
    conns: Arc<ConnQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal shutdown and join every thread. Idempotent. Kept-alive
    /// connections are closed at their next poll tick, not waited out.
    pub fn stop(&mut self) {
        if self.conns.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.conns.ready.notify_all();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and serve `handler` on `workers` threads with the
/// default (keep-alive) connection options until
/// [`ServerHandle::stop`] is called.
pub fn serve<H: Handler>(
    addr: &str,
    workers: usize,
    handler: Arc<H>,
) -> std::io::Result<ServerHandle> {
    serve_with(addr, workers, handler, ServeOptions::default())
}

/// [`serve`] with explicit connection-plane options.
pub fn serve_with<H: Handler>(
    addr: &str,
    workers: usize,
    handler: Arc<H>,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let conns = Arc::new(ConnQueue {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
    });

    let accept_conns = Arc::clone(&conns);
    let accept = std::thread::Builder::new()
        .name("svc-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_conns.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(conn) = conn {
                    accept_conns.push(conn);
                }
            }
        })?;

    let mut pool = Vec::with_capacity(workers.max(1));
    for i in 0..workers.max(1) {
        let conns = Arc::clone(&conns);
        let handler = Arc::clone(&handler);
        let options = options.clone();
        pool.push(
            std::thread::Builder::new()
                .name(format!("svc-worker-{i}"))
                .spawn(move || {
                    while let Some(conn) = conns.pop() {
                        let served =
                            serve_connection(conn, handler.as_ref(), &options, &conns.stop);
                        handler.connection_closed(served);
                    }
                })?,
        );
    }

    Ok(ServerHandle {
        addr: bound,
        conns,
        accept: Some(accept),
        workers: pool,
    })
}

/// Serve requests off `conn` until it closes; returns how many it
/// answered. All I/O errors are swallowed — a dropped client costs
/// nothing but its own replies.
///
/// The loop drains every complete request already buffered before
/// reading again, so pipelined requests get their responses back to
/// back in order. [`RequestBuffer`] consumes exactly the bytes each
/// request used (the `used` count [`crate::http::parse_request`]
/// reports) and resumes its delimiter scan where it left off, so big
/// bodies cost one pass, not one per read.
fn serve_connection<H: Handler>(
    mut conn: TcpStream,
    handler: &H,
    options: &ServeOptions,
    stop: &AtomicBool,
) -> u64 {
    let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
    let _ = conn.set_nodelay(true);
    let mut reqs = RequestBuffer::new();
    let mut chunk = [0u8; 4096];
    let mut served: u64 = 0;
    let mut waited = Duration::ZERO;
    loop {
        // Drain buffered requests first (keep-alive + pipelining).
        loop {
            match reqs.next_request() {
                HttpParse::Complete(req, _) => {
                    served += 1;
                    // Close when: keep-alive is off, the client asked,
                    // the per-connection cap is reached, or the server
                    // is shutting down. The response says which ever
                    // way it goes.
                    let close = !options.keep_alive
                        || served >= options.max_requests
                        || stop.load(Ordering::SeqCst)
                        || wants_close(&req);
                    let response = handler.handle(&req);
                    if conn.write_all(&response.to_bytes_conn(close)).is_err()
                        || conn.flush().is_err()
                        || close
                    {
                        return served;
                    }
                    waited = Duration::ZERO;
                }
                HttpParse::Invalid(reason) => {
                    // Framing is unrecoverable after a bad request —
                    // 400 and hang up, on every mode.
                    let resp = HttpResponse::text(400, format!("bad request: {reason}\n"));
                    let _ = conn.write_all(&resp.to_bytes_conn(true));
                    let _ = conn.flush();
                    return served;
                }
                HttpParse::Incomplete => break,
            }
        }
        // Need more bytes. Read in short slices so shutdown and the
        // idle/read deadlines stay responsive.
        match conn.read(&mut chunk) {
            Ok(0) => return served, // peer hung up
            Ok(n) => {
                reqs.extend(&chunk[..n]);
                waited = Duration::ZERO;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return served; // server-initiated close on shutdown
                }
                waited += POLL_INTERVAL;
                // Mid-request stalls get the (short) read timeout;
                // an empty buffer between requests gets the idle one.
                let limit = if reqs.is_empty() && options.keep_alive {
                    options.idle_timeout
                } else {
                    READ_TIMEOUT
                };
                if waited >= limit {
                    return served;
                }
            }
            Err(_) => return served, // reset or other hard error
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Echo {
        conns: AtomicU64,
        requests: AtomicU64,
    }
    impl Echo {
        fn new() -> Echo {
            Echo {
                conns: AtomicU64::new(0),
                requests: AtomicU64::new(0),
            }
        }
    }
    impl Handler for Echo {
        fn handle(&self, req: &HttpRequest) -> HttpResponse {
            HttpResponse::text(200, format!("{} {}", req.method, req.path))
        }
        fn connection_closed(&self, served: u64) {
            self.conns.fetch_add(1, Ordering::SeqCst);
            self.requests.fetch_add(served, Ordering::SeqCst);
        }
    }

    fn roundtrip(addr: SocketAddr, wire: &[u8]) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(wire).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    /// Read one `Content-Length`-framed response off `conn`, carrying
    /// leftover bytes (pipelined follow-up responses) in `buf`.
    fn read_framed_response(
        conn: &mut TcpStream,
        buf: &mut Vec<u8>,
    ) -> crate::http::ParsedResponse {
        use crate::http::{parse_response_bytes, ResponseParse};
        let mut chunk = [0u8; 1024];
        loop {
            match parse_response_bytes(buf) {
                ResponseParse::Complete(resp, used) => {
                    buf.drain(..used);
                    return *resp;
                }
                ResponseParse::Incomplete => {
                    let n = conn.read(&mut chunk).unwrap();
                    assert!(n > 0, "peer closed mid-response");
                    buf.extend_from_slice(&chunk[..n]);
                }
                ResponseParse::Invalid(r) => panic!("invalid response: {r}"),
            }
        }
    }

    /// Read exactly one response, asserting nothing was pipelined
    /// behind it.
    fn read_one_response(conn: &mut TcpStream) -> crate::http::ParsedResponse {
        let mut buf = Vec::new();
        let resp = read_framed_response(conn, &mut buf);
        assert!(buf.is_empty(), "read past one response");
        resp
    }

    #[test]
    fn serves_concurrent_requests_and_stops_cleanly() {
        let mut server = serve("127.0.0.1:0", 4, Arc::new(Echo::new())).unwrap();
        let addr = server.addr;
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    roundtrip(
                        addr,
                        format!("GET /t{i} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
                    )
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let reply = t.join().unwrap();
            assert!(reply.ends_with(&format!("GET /t{i}")), "reply: {reply}");
            assert!(reply.contains("Connection: close\r\n"), "reply: {reply}");
        }
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn malformed_request_gets_a_400() {
        let mut server = serve("127.0.0.1:0", 1, Arc::new(Echo::new())).unwrap();
        let reply = roundtrip(server.addr, b"GARBAGE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400 "), "reply: {reply}");
        server.stop();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_socket() {
        let echo = Arc::new(Echo::new());
        let mut server = serve("127.0.0.1:0", 1, Arc::clone(&echo)).unwrap();
        let mut conn = TcpStream::connect(server.addr).unwrap();
        for i in 0..5 {
            conn.write_all(format!("GET /seq{i} HTTP/1.1\r\n\r\n").as_bytes())
                .unwrap();
            let resp = read_one_response(&mut conn);
            assert_eq!(resp.body, format!("GET /seq{i}").as_bytes());
            assert!(!resp.closes_connection(), "held open between requests");
        }
        // Negotiate the close; the final response must announce it.
        conn.write_all(b"GET /last HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let resp = read_one_response(&mut conn);
        assert!(resp.closes_connection());
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "socket closed after negotiated close");
        server.stop();
        assert_eq!(echo.conns.load(Ordering::SeqCst), 1);
        assert_eq!(echo.requests.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn pipelined_requests_get_ordered_responses() {
        let mut server = serve("127.0.0.1:0", 1, Arc::new(Echo::new())).unwrap();
        let mut conn = TcpStream::connect(server.addr).unwrap();
        // All 8 requests in one write, before reading anything back.
        let mut wire = Vec::new();
        for i in 0..8 {
            wire.extend_from_slice(format!("GET /p{i} HTTP/1.1\r\n\r\n").as_bytes());
        }
        conn.write_all(&wire).unwrap();
        let mut buf = Vec::new();
        for i in 0..8 {
            let resp = read_framed_response(&mut conn, &mut buf);
            assert_eq!(
                resp.body,
                format!("GET /p{i}").as_bytes(),
                "responses in request order"
            );
        }
        assert!(buf.is_empty(), "exactly 8 responses came back");
        server.stop();
    }

    #[test]
    fn request_cap_closes_the_connection() {
        let opts = ServeOptions {
            max_requests: 3,
            ..ServeOptions::default()
        };
        let echo = Arc::new(Echo::new());
        let mut server = serve_with("127.0.0.1:0", 1, Arc::clone(&echo), opts).unwrap();
        let mut conn = TcpStream::connect(server.addr).unwrap();
        for i in 0..3 {
            conn.write_all(format!("GET /c{i} HTTP/1.1\r\n\r\n").as_bytes())
                .unwrap();
            let resp = read_one_response(&mut conn);
            assert_eq!(resp.closes_connection(), i == 2, "cap announced on #3");
        }
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "socket closed at the cap");
        server.stop();
        assert_eq!(echo.requests.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn closing_mode_hangs_up_after_one_exchange() {
        let mut server = serve_with(
            "127.0.0.1:0",
            1,
            Arc::new(Echo::new()),
            ServeOptions::closing(),
        )
        .unwrap();
        let reply = roundtrip(server.addr, b"GET /one HTTP/1.1\r\n\r\n");
        assert!(reply.contains("Connection: close\r\n"), "reply: {reply}");
        assert!(reply.ends_with("GET /one"));
        server.stop();
    }

    #[test]
    fn idle_timeout_closes_a_quiet_connection() {
        let opts = ServeOptions {
            idle_timeout: Duration::from_millis(200),
            ..ServeOptions::default()
        };
        let mut server = serve_with("127.0.0.1:0", 1, Arc::new(Echo::new()), opts).unwrap();
        let mut conn = TcpStream::connect(server.addr).unwrap();
        conn.write_all(b"GET /warm HTTP/1.1\r\n\r\n").unwrap();
        let _ = read_one_response(&mut conn);
        // Then go quiet: the server must close, not hold the worker.
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "no bytes after idle close");
        server.stop();
    }

    #[test]
    fn shutdown_closes_kept_alive_sockets_promptly() {
        let opts = ServeOptions {
            idle_timeout: Duration::from_secs(60), // idle timeout must NOT be the closer
            ..ServeOptions::default()
        };
        let mut server = serve_with("127.0.0.1:0", 1, Arc::new(Echo::new()), opts).unwrap();
        let mut conn = TcpStream::connect(server.addr).unwrap();
        conn.write_all(b"GET /live HTTP/1.1\r\n\r\n").unwrap();
        let _ = read_one_response(&mut conn);
        let start = std::time::Instant::now();
        server.stop();
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "no bytes after shutdown close");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown waited out the idle timeout: {:?}",
            start.elapsed()
        );
    }
}
