//! A tiny blocking server runtime: `TcpListener` + worker pool.
//!
//! crates.io is unreachable from this build environment, so there is no
//! async stack to lean on; instead the service runs on the primitives
//! std already ships. An accept thread pushes connections onto a
//! `Mutex<VecDeque>` guarded by a `Condvar`; a fixed pool of workers
//! pops and serves them. One request per connection
//! (`Connection: close`), which keeps the framing trivial and is ample
//! for an appraisal-rate workload (E18 sustains thousands of verdicts
//! per second through it).
//!
//! Graceful shutdown: flip an `AtomicBool`, then self-connect once to
//! unblock the accept loop; workers drain the queue and exit when they
//! see the flag with an empty queue.

use crate::http::{parse_request, HttpParse, HttpRequest, HttpResponse};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read timeout — bounds how long a slow or hostile
/// client can hold a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Something that turns requests into responses. The service
/// implements this; the runtime stays protocol-agnostic above HTTP.
pub trait Handler: Send + Sync + 'static {
    /// Handle one parsed request.
    fn handle(&self, req: &HttpRequest) -> HttpResponse;
}

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl ConnQueue {
    fn push(&self, conn: TcpStream) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.push_back(conn);
        self.ready.notify_one();
    }

    /// Pop the next connection, blocking; `None` once stopped and
    /// drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            q = self.ready.wait(q).expect("queue poisoned");
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::stop`].
pub struct ServerHandle {
    /// Address the server actually bound (useful with port 0).
    pub addr: SocketAddr,
    conns: Arc<ConnQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal shutdown and join every thread. Idempotent.
    pub fn stop(&mut self) {
        if self.conns.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.conns.ready.notify_all();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and serve `handler` on `workers` threads until
/// [`ServerHandle::stop`] is called.
pub fn serve<H: Handler>(
    addr: &str,
    workers: usize,
    handler: Arc<H>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let conns = Arc::new(ConnQueue {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
    });

    let accept_conns = Arc::clone(&conns);
    let accept = std::thread::Builder::new()
        .name("svc-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_conns.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(conn) = conn {
                    accept_conns.push(conn);
                }
            }
        })?;

    let mut pool = Vec::with_capacity(workers.max(1));
    for i in 0..workers.max(1) {
        let conns = Arc::clone(&conns);
        let handler = Arc::clone(&handler);
        pool.push(
            std::thread::Builder::new()
                .name(format!("svc-worker-{i}"))
                .spawn(move || {
                    while let Some(conn) = conns.pop() {
                        serve_connection(conn, handler.as_ref());
                    }
                })?,
        );
    }

    Ok(ServerHandle {
        addr: bound,
        conns,
        accept: Some(accept),
        workers: pool,
    })
}

/// Read one request off `conn`, dispatch it, write the response. All
/// I/O errors are swallowed — a dropped client costs nothing but its
/// own reply.
fn serve_connection<H: Handler>(mut conn: TcpStream, handler: &H) {
    let _ = conn.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let response = loop {
        match parse_request(&buf) {
            HttpParse::Complete(req, _) => break handler.handle(&req),
            HttpParse::Invalid(reason) => {
                break HttpResponse::text(400, format!("bad request: {reason}\n"))
            }
            HttpParse::Incomplete => match conn.read(&mut chunk) {
                Ok(0) => return, // peer hung up mid-request
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => return, // timeout or reset
            },
        }
    };
    let _ = conn.write_all(&response.to_bytes());
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, req: &HttpRequest) -> HttpResponse {
            HttpResponse::text(200, format!("{} {}", req.method, req.path))
        }
    }

    fn roundtrip(addr: SocketAddr, wire: &[u8]) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(wire).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_concurrent_requests_and_stops_cleanly() {
        let mut server = serve("127.0.0.1:0", 4, Arc::new(Echo)).unwrap();
        let addr = server.addr;
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    roundtrip(addr, format!("GET /t{i} HTTP/1.1\r\n\r\n").as_bytes())
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let reply = t.join().unwrap();
            assert!(reply.ends_with(&format!("GET /t{i}")), "reply: {reply}");
        }
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn malformed_request_gets_a_400() {
        let mut server = serve("127.0.0.1:0", 1, Arc::new(Echo)).unwrap();
        let reply = roundtrip(server.addr, b"GARBAGE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400 "), "reply: {reply}");
        server.stop();
    }
}
