//! `pda-svc`: the long-running attestation appraisal service.
//!
//! The paper frames remote attestation of programmable dataplanes as a
//! *continuous* obligation: switches churn — programs reload, devices
//! restart, links flap — and a verdict is only as good as its
//! freshness. This crate turns the repo's one-shot appraisal machinery
//! into a service built for that regime:
//!
//! * **Runtime** ([`runtime`]): a dependency-free mini-server — std
//!   `TcpListener`, a hand-rolled worker pool, graceful shutdown — in
//!   keeping with this workspace's no-external-crates constraint.
//!   Connections are persistent (HTTP/1.1 keep-alive with
//!   pipelining, per-connection request cap, idle timeout,
//!   `Connection: close` negotiation), and [`SvcClient`] pools its
//!   side of them, so the sustained small-RPC stream of continuous
//!   attestation pays per-call work, not per-call TCP setup.
//! * **API** ([`http`], [`rpc`], [`service`]): JSON-RPC 2.0 over HTTP
//!   (`submit-evidence`, `appraise`, `query-audit-log`, `metrics`,
//!   `health`, `shutdown`), plus plain GET `/metrics` (Prometheus
//!   text) and `/health`. Both parsers are hardened: no input bytes
//!   can panic them.
//! * **Federation** ([`federation`]): N appraisers, each with its own
//!   golden store and key registry, independently run the full
//!   `pda_ra` appraisal; a quorum rule (majority / unanimous / k-of-n)
//!   combines the verdicts, out-voting a faulty or corrupted member
//!   whose dissent stays attributable in the audit log.
//! * **Churn** ([`churn`]): a driver coupling the service to
//!   `pda-netsim`'s fault plane — restarts, lossy links, control-loss
//!   with retries, switch-down windows, rogue program reloads —
//!   streaming continuous attestation through the live API (E18).

pub mod churn;
pub mod client;
pub mod federation;
pub mod fleet;
pub mod http;
pub mod rpc;
pub mod runtime;
pub mod service;

pub use churn::{rogue_reload, run_churn, run_churn_with, ChurnConfig, ChurnReport};
pub use client::SvcClient;
pub use federation::{Appraiser, Federation, Quorum, QuorumVerdict};
pub use runtime::{serve, serve_with, Handler, ServeOptions, ServerHandle};
pub use service::{AppraisalService, SvcConfig};
