//! The appraisal service proper: JSON-RPC methods over the federation.
//!
//! Method surface (all POST `/rpc`, JSON-RPC 2.0):
//!
//! | method            | params                          | result |
//! |-------------------|---------------------------------|--------|
//! | `submit-evidence` | `{records: <hex wire bytes>}`   | `{accepted, nonces}` |
//! | `appraise`        | `{nonce}`                       | quorum verdict |
//! | `query-audit-log` | `{subject?, limit?}`            | `{records: [...]}` |
//! | `metrics`         | —                               | metrics snapshot |
//! | `health`          | —                               | `{ok, appraisers, quorum}` |
//! | `shutdown`        | —                               | `{stopping: true}` |
//!
//! Plain GET `/metrics` serves the Prometheus text rendition and GET
//! `/health` the health JSON, for scrapers that don't speak JSON-RPC.

use crate::federation::{Appraiser, Federation, Quorum, QuorumVerdict};
use crate::fleet::{enroll_fleet_golden, fleet_registry, standard_fleet};
use crate::http::{HttpRequest, HttpResponse};
use crate::rpc::{err_response, from_hex, ok_response_traced, RpcRequest};
use crate::runtime::Handler;
use pda_crypto::nonce::Nonce;
use pda_pera::config::DetailLevel;
use pda_pera::evidence::assemble_chain;
use pda_pera::EvidenceRecord;
use pda_telemetry::json::Json;
use pda_telemetry::{FlightRecorder, SloPolicy, Telemetry, TraceCtx, TraceId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct SvcConfig {
    /// Switches in the appraised fleet's linear path.
    pub hops: usize,
    /// Federation size.
    pub appraisers: usize,
    /// Quorum rule combining the appraisers.
    pub quorum: Quorum,
    /// Deliberately corrupt the last appraiser's golden store
    /// (Byzantine-member drill; its dissent shows in the audit log).
    pub corrupt: bool,
    /// Worker threads serving connections.
    pub workers: usize,
}

impl Default for SvcConfig {
    fn default() -> SvcConfig {
        SvcConfig {
            hops: 3,
            appraisers: 3,
            quorum: Quorum::Majority,
            corrupt: false,
            workers: 4,
        }
    }
}

/// The long-running appraisal service.
pub struct AppraisalService {
    config: SvcConfig,
    federation: Federation,
    /// Whether submitted evidence is hop-linked (default PERA config).
    chained: bool,
    telemetry: Telemetry,
    /// Submitted evidence, grouped by nonce, awaiting appraisal.
    store: Mutex<HashMap<u64, Vec<EvidenceRecord>>>,
    /// Set by the `shutdown` RPC; the serve driver polls it.
    shutdown_requested: AtomicBool,
    /// Flight recorder fed by the same telemetry handle; anomalous
    /// verdicts trigger a per-trace dump.
    flight: Option<Arc<FlightRecorder>>,
    /// Verdict-latency SLO, re-evaluated and published per appraisal.
    slo: Option<SloPolicy>,
}

impl AppraisalService {
    /// Build the service: reconstruct the fleet's deterministic
    /// enrollment, stand up the federation, optionally poisoning the
    /// last member.
    pub fn new(config: SvcConfig, telemetry: Telemetry) -> AppraisalService {
        let fleet = standard_fleet(config.hops);
        let golden = enroll_fleet_golden(&fleet);
        let registry = fleet_registry(&fleet);
        let mut appraisers: Vec<Appraiser> = (1..=config.appraisers)
            .map(|i| Appraiser::new(format!("a{i}"), golden.clone(), registry.clone()))
            .collect();
        if config.corrupt {
            if let Some(last) = appraisers.last_mut() {
                last.poison("sw1", DetailLevel::Program);
            }
        }
        AppraisalService {
            federation: Federation {
                appraisers,
                quorum: config.quorum,
            },
            chained: true,
            config,
            telemetry,
            store: Mutex::new(HashMap::new()),
            shutdown_requested: AtomicBool::new(false),
            flight: None,
            slo: None,
        }
    }

    /// Attach a flight recorder. The recorder must be (part of) the
    /// subscriber behind this service's [`Telemetry`] handle to see
    /// any events; the service only drives its anomaly triggers
    /// (rejected verdict, dissent, indeterminate appraisal, p99 SLO
    /// breach).
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> AppraisalService {
        self.flight = Some(recorder);
        self
    }

    /// Track a verdict-latency SLO over `svc.verdict.ns`, publishing
    /// compliance and burn-rate gauges after every appraisal.
    pub fn with_slo(mut self, policy: SloPolicy) -> AppraisalService {
        self.slo = Some(policy);
        self
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// The service's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether a `shutdown` RPC has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    fn bump(&self, name: &str, n: u64) {
        if let Some(reg) = self.telemetry.registry() {
            reg.counter(name).add(n);
        }
    }

    /// `submit-evidence`: decode hex-encoded wire records and store
    /// them by nonce.
    fn rpc_submit(&self, params: &Json) -> Result<Json, String> {
        let hex = params
            .get("records")
            .and_then(Json::as_str)
            .ok_or("params.records (hex string) is required")?;
        let bytes = from_hex(hex).ok_or("params.records is not valid hex")?;
        let records =
            EvidenceRecord::read_wire_all(&bytes).ok_or("records do not decode as evidence")?;
        if records.is_empty() {
            return Err("no records in submission".to_string());
        }
        let accepted = records.len() as u64;
        let mut nonces: Vec<u64> = Vec::new();
        {
            let mut store = self.store.lock().expect("store poisoned");
            for r in records {
                let n = r.nonce.0;
                if !nonces.contains(&n) {
                    nonces.push(n);
                }
                store.entry(n).or_default().push(r);
            }
        }
        self.bump("svc.submissions", 1);
        self.bump("svc.records", accepted);
        Ok(Json::Obj(vec![
            ("accepted".to_string(), Json::UInt(accepted)),
            (
                "nonces".to_string(),
                Json::Arr(nonces.into_iter().map(Json::UInt).collect()),
            ),
        ]))
    }

    /// `appraise`: run the federation over everything submitted for a
    /// nonce.
    fn rpc_appraise(&self, params: &Json) -> Result<Json, String> {
        let nonce = params
            .get("nonce")
            .and_then(Json::as_u64)
            .ok_or("params.nonce is required")?;
        let records = {
            let store = self.store.lock().expect("store poisoned");
            store
                .get(&nonce)
                .cloned()
                .ok_or(format!("no evidence submitted for nonce {nonce}"))?
        };
        // Loss-tolerant ingest: submissions may arrive duplicated or
        // reordered (lossy control channels retry); reassemble first.
        let (chain, _extras) = assemble_chain(records);
        let trace = TraceId::for_nonce(nonce);
        let start = Instant::now();
        let verdict = self
            .federation
            .appraise(&chain, Nonce(nonce), self.chained, &self.telemetry);
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let mut p99_breached = false;
        let mut slow_traces: Vec<TraceId> = Vec::new();
        if let Some(reg) = self.telemetry.registry() {
            let hist = reg.histogram("svc.verdict.ns");
            hist.record_traced(elapsed_ns, trace);
            if let Some(slo) = &self.slo {
                p99_breached = slo.publish(reg, &hist).p99_breached;
                if p99_breached {
                    // A p99 breach is an aggregate symptom: the slow
                    // requests are the histogram's exemplars, not
                    // necessarily the request that tipped the quantile.
                    slow_traces = hist.exemplars().into_iter().map(|e| e.trace).collect();
                }
            }
        }
        self.bump("svc.appraisals", 1);
        if !verdict.ok {
            self.bump("svc.appraisal_failures", 1);
        }
        if let Some(flight) = &self.flight {
            if !verdict.ok {
                flight.trigger("rejected", trace);
            } else if !verdict.dissenters.is_empty() {
                flight.trigger("dissent", trace);
            }
            if p99_breached {
                // Dump the exemplar (actually-slow) traces plus the
                // current one, deduplicated.
                if !slow_traces.contains(&trace) {
                    slow_traces.push(trace);
                }
                for t in &slow_traces {
                    flight.trigger("slo_p99_breach", *t);
                }
            }
        }
        Ok(verdict_json(&verdict, nonce, chain.len(), elapsed_ns))
    }

    /// `query-audit-log`: the shared audit trail, optionally filtered
    /// by subject substring, most recent last.
    fn rpc_audit_log(&self, params: &Json) -> Result<Json, String> {
        let subject = params.get("subject").and_then(Json::as_str);
        let limit = params
            .get("limit")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX) as usize;
        let log = self
            .telemetry
            .audit_log()
            .ok_or("telemetry is disabled; no audit log")?;
        let mut out: Vec<Json> = log
            .records()
            .iter()
            .map(|r| r.to_json())
            .filter(|j| match subject {
                None => true,
                Some(s) => j
                    .get("subject")
                    .and_then(Json::as_str)
                    .is_some_and(|subj| subj.contains(s)),
            })
            .collect();
        if out.len() > limit {
            out.drain(..out.len() - limit);
        }
        Ok(Json::Obj(vec![
            ("count".to_string(), Json::UInt(out.len() as u64)),
            ("records".to_string(), Json::Arr(out)),
        ]))
    }

    fn rpc_metrics(&self) -> Result<Json, String> {
        self.telemetry
            .registry()
            .map(|r| r.encode_json())
            .ok_or("telemetry is disabled; no metrics".to_string())
    }

    fn health_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            (
                "appraisers".to_string(),
                Json::UInt(self.config.appraisers as u64),
            ),
            (
                "quorum".to_string(),
                Json::Str(self.config.quorum.to_string()),
            ),
            ("hops".to_string(), Json::UInt(self.config.hops as u64)),
            ("corrupt".to_string(), Json::Bool(self.config.corrupt)),
        ])
    }

    /// Dispatch one JSON-RPC request.
    pub fn dispatch(&self, req: &RpcRequest) -> String {
        // Join the caller's trace: an explicit traceparent wins, else
        // derive from the nonce parameter (the canonical trace key).
        let ctx = req
            .traceparent
            .as_deref()
            .and_then(TraceCtx::parse_traceparent)
            .or_else(|| {
                req.params
                    .get("nonce")
                    .and_then(Json::as_u64)
                    .map(TraceCtx::for_nonce)
            });
        let mut span = self.telemetry.span("svc.rpc");
        if span.is_active() {
            span.set("method", req.method.as_str());
            if let Some(c) = &ctx {
                c.child("svc.rpc", req.id).stamp(&mut span);
            }
        }
        let _span = span;
        let result = match req.method.as_str() {
            "submit-evidence" => self.rpc_submit(&req.params),
            "appraise" => self.rpc_appraise(&req.params),
            "query-audit-log" => self.rpc_audit_log(&req.params),
            "metrics" => self.rpc_metrics(),
            "health" => Ok(self.health_json()),
            "shutdown" => {
                self.shutdown_requested.store(true, Ordering::SeqCst);
                Ok(Json::Obj(vec![("stopping".to_string(), Json::Bool(true))]))
            }
            other => Err(format!("unknown method {other:?}")),
        };
        // An appraisal that could not run at all (e.g. no evidence
        // under the nonce) is an indeterminate verdict: worth a dump.
        if let (Some(flight), Some(c)) = (&self.flight, &ctx) {
            if req.method == "appraise" && result.is_err() {
                flight.trigger("indeterminate", c.trace);
            }
        }
        match result {
            Ok(v) => ok_response_traced(req.id, v, req.traceparent.as_deref()),
            Err(msg) => err_response(req.id, -32000, &msg),
        }
    }
}

/// Render a quorum verdict as the `appraise` RPC result.
fn verdict_json(v: &QuorumVerdict, nonce: u64, chain_len: usize, elapsed_ns: u64) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(v.ok)),
        ("nonce".to_string(), Json::UInt(nonce)),
        ("yes".to_string(), Json::UInt(v.yes as u64)),
        ("total".to_string(), Json::UInt(v.total as u64)),
        ("required".to_string(), Json::UInt(v.required as u64)),
        (
            "dissenters".to_string(),
            Json::Arr(v.dissenters.iter().map(|d| Json::Str(d.clone())).collect()),
        ),
        (
            "causes".to_string(),
            Json::Arr(v.causes.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("chain_len".to_string(), Json::UInt(chain_len as u64)),
        ("elapsed_ns".to_string(), Json::UInt(elapsed_ns)),
    ])
}

impl Handler for AppraisalService {
    /// Connection-plane accounting: every closed connection bumps
    /// `svc.http.connections` and adds its request count to
    /// `svc.http.requests`; connections that served more than one
    /// request (keep-alive reuse) bump `svc.http.reused_connections`.
    /// The CI smoke job asserts reuse through these on `/metrics`.
    fn connection_closed(&self, requests_served: u64) {
        self.bump("svc.http.connections", 1);
        self.bump("svc.http.requests", requests_served);
        if requests_served >= 2 {
            self.bump("svc.http.reused_connections", 1);
        }
    }

    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/rpc") => {
                let Ok(text) = std::str::from_utf8(&req.body) else {
                    return HttpResponse::json(400, err_response(0, -32700, "body is not UTF-8"));
                };
                match RpcRequest::parse(text) {
                    Ok(rpc) => HttpResponse::json(200, self.dispatch(&rpc)),
                    Err(e) => HttpResponse::json(400, err_response(0, -32600, &e.to_string())),
                }
            }
            ("GET", "/metrics") => match self.telemetry.registry() {
                Some(reg) => {
                    // Refresh the SLO gauges so scrapes always see
                    // values consistent with the histogram they read.
                    if let Some(slo) = &self.slo {
                        slo.publish(reg, &reg.histogram("svc.verdict.ns"));
                    }
                    HttpResponse::text(200, reg.encode_prometheus())
                }
                None => HttpResponse::text(404, "telemetry disabled\n".to_string()),
            },
            ("GET", "/health") => HttpResponse::json(200, self.health_json().encode()),
            ("POST", _) | ("GET", _) => {
                HttpResponse::text(404, format!("no such endpoint: {}\n", req.path))
            }
            _ => HttpResponse::text(405, "method not allowed\n".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::to_hex;
    use pda_netsim::EvidenceMode;

    /// Drive a fleet to produce a wire-encoded evidence chain.
    fn wire_chain(hops: usize, nonce: u64) -> String {
        let mut fleet = standard_fleet(hops);
        let appraiser = fleet.appraiser;
        fleet.send_attested(Nonce(nonce), EvidenceMode::OutOfBand { appraiser }, b"pkt");
        let records = fleet.sim.evidence_at(appraiser);
        assert_eq!(records.len(), hops, "every hop reported");
        let mut bytes = Vec::new();
        for r in records {
            r.write_wire(&mut bytes);
        }
        to_hex(&bytes)
    }

    fn submit_and_appraise(svc: &AppraisalService, nonce: u64, hex: &str) -> Json {
        let sub = RpcRequest::new(
            1,
            "submit-evidence",
            Json::Obj(vec![("records".to_string(), Json::Str(hex.to_string()))]),
        );
        let reply = crate::rpc::parse_response(&svc.dispatch(&sub)).expect("submit accepted");
        assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(3));
        let app = RpcRequest::new(
            2,
            "appraise",
            Json::Obj(vec![("nonce".to_string(), Json::UInt(nonce))]),
        );
        crate::rpc::parse_response(&svc.dispatch(&app)).expect("appraisal ran")
    }

    #[test]
    fn clean_chain_passes_unanimously() {
        let svc = AppraisalService::new(SvcConfig::default(), Telemetry::collecting());
        let verdict = submit_and_appraise(&svc, 7, &wire_chain(3, 7));
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(verdict.get("yes").and_then(Json::as_u64), Some(3));
        assert_eq!(
            verdict.get("dissenters").and_then(Json::as_arr),
            Some(&[][..])
        );
    }

    #[test]
    fn corrupt_appraiser_dissents_but_quorum_holds() {
        let config = SvcConfig {
            quorum: Quorum::KOfN(2),
            corrupt: true,
            ..SvcConfig::default()
        };
        let svc = AppraisalService::new(config, Telemetry::collecting());
        let verdict = submit_and_appraise(&svc, 9, &wire_chain(3, 9));
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(verdict.get("yes").and_then(Json::as_u64), Some(2));
        let dissenters = verdict.get("dissenters").and_then(Json::as_arr).unwrap();
        assert_eq!(dissenters, &[Json::Str("a3".to_string())]);
        // The dissent is attributable in the audit log.
        let q = RpcRequest::new(
            3,
            "query-audit-log",
            Json::Obj(vec![(
                "subject".to_string(),
                Json::Str("svc/a3".to_string()),
            )]),
        );
        let log = crate::rpc::parse_response(&svc.dispatch(&q)).unwrap();
        let recs = log.get("records").and_then(Json::as_arr).unwrap();
        assert!(!recs.is_empty(), "dissenter's verdict is in the log");
        assert_eq!(
            recs.last().unwrap().get("ok").and_then(Json::as_bool),
            Some(false),
            "dissenting verdict recorded as a failure"
        );
    }

    #[test]
    fn wrong_nonce_fails_the_quorum() {
        let svc = AppraisalService::new(SvcConfig::default(), Telemetry::collecting());
        let sub = RpcRequest::new(
            1,
            "submit-evidence",
            Json::Obj(vec![("records".to_string(), Json::Str(wire_chain(3, 5)))]),
        );
        svc.dispatch(&sub);
        // Appraising nonce 5's chain is fine; there is nothing under 6.
        let missing = RpcRequest::new(
            2,
            "appraise",
            Json::Obj(vec![("nonce".to_string(), Json::UInt(6))]),
        );
        assert!(crate::rpc::parse_response(&svc.dispatch(&missing)).is_err());
    }

    #[test]
    fn bad_submissions_are_rejected() {
        let svc = AppraisalService::new(SvcConfig::default(), Telemetry::collecting());
        for bad in [
            Json::Obj(vec![]),
            Json::Obj(vec![("records".to_string(), Json::Str("zz".to_string()))]),
            Json::Obj(vec![(
                "records".to_string(),
                Json::Str("deadbeef".to_string()),
            )]),
            Json::Obj(vec![("records".to_string(), Json::Str(String::new()))]),
        ] {
            let req = RpcRequest::new(1, "submit-evidence", bad);
            assert!(crate::rpc::parse_response(&svc.dispatch(&req)).is_err());
        }
    }

    #[test]
    fn shutdown_rpc_sets_the_flag() {
        let svc = AppraisalService::new(SvcConfig::default(), Telemetry::collecting());
        assert!(!svc.shutdown_requested());
        let req = RpcRequest::new(1, "shutdown", Json::Null);
        let reply = crate::rpc::parse_response(&svc.dispatch(&req)).unwrap();
        assert_eq!(reply.get("stopping").and_then(Json::as_bool), Some(true));
        assert!(svc.shutdown_requested());
    }
}
