//! JSON-RPC 2.0 codec over [`pda_telemetry::json`].
//!
//! The service API is JSON-RPC over HTTP POST: one request object per
//! call, one response object per reply. Encoding is canonical — field
//! order is fixed — so `parse(encode(r))` re-encodes byte-identically,
//! a property the codec proptests pin.

use pda_telemetry::json::{parse as parse_json, Json};
use std::fmt;

/// One JSON-RPC request.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcRequest {
    /// Caller-chosen request id, echoed in the response.
    pub id: u64,
    /// Method name (`submit-evidence`, `appraise`, …).
    pub method: String,
    /// W3C-style trace context (`00-<trace>-<span>-01`), echoed in the
    /// response so the caller can confirm the service joined its trace.
    pub traceparent: Option<String>,
    /// Method parameters (an object, or `Json::Null` when absent).
    pub params: Json,
}

/// Why a request failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// The body is not valid JSON.
    BadJson(String),
    /// The JSON is not a valid JSON-RPC request.
    BadRequest(&'static str),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::BadJson(e) => write!(f, "invalid JSON: {e}"),
            RpcError::BadRequest(e) => write!(f, "invalid JSON-RPC request: {e}"),
        }
    }
}

impl RpcRequest {
    /// Build a request with parameters.
    pub fn new(id: u64, method: &str, params: Json) -> RpcRequest {
        RpcRequest {
            id,
            method: method.to_string(),
            traceparent: None,
            params,
        }
    }

    /// Attach a trace context header to this request.
    pub fn with_traceparent(mut self, traceparent: impl Into<String>) -> RpcRequest {
        self.traceparent = Some(traceparent.into());
        self
    }

    /// Parse a request from a JSON text body. Never panics on
    /// arbitrary input.
    pub fn parse(text: &str) -> Result<RpcRequest, RpcError> {
        let v = parse_json(text).map_err(|e| RpcError::BadJson(e.to_string()))?;
        let obj_err = RpcError::BadRequest("request must be an object");
        let Json::Obj(_) = v else {
            return Err(obj_err);
        };
        match v.get("jsonrpc").and_then(Json::as_str) {
            Some("2.0") => {}
            _ => return Err(RpcError::BadRequest("jsonrpc must be \"2.0\"")),
        }
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or(RpcError::BadRequest("id must be an unsigned integer"))?;
        let method = v
            .get("method")
            .and_then(Json::as_str)
            .ok_or(RpcError::BadRequest("method must be a string"))?
            .to_string();
        let traceparent = v
            .get("traceparent")
            .and_then(Json::as_str)
            .map(str::to_string);
        let params = v.get("params").cloned().unwrap_or(Json::Null);
        Ok(RpcRequest {
            id,
            method,
            traceparent,
            params,
        })
    }

    /// Canonical encoding: fixed field order, `traceparent` and
    /// `params` omitted when absent.
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("jsonrpc".to_string(), Json::Str("2.0".to_string())),
            ("id".to_string(), Json::UInt(self.id)),
            ("method".to_string(), Json::Str(self.method.clone())),
        ];
        if let Some(tp) = &self.traceparent {
            fields.push(("traceparent".to_string(), Json::Str(tp.clone())));
        }
        if self.params != Json::Null {
            fields.push(("params".to_string(), self.params.clone()));
        }
        Json::Obj(fields).encode()
    }
}

/// Encode a success response.
pub fn ok_response(id: u64, result: Json) -> String {
    ok_response_traced(id, result, None)
}

/// Encode a success response, echoing the request's `traceparent` so
/// the caller can verify the service joined its trace.
pub fn ok_response_traced(id: u64, result: Json, traceparent: Option<&str>) -> String {
    let mut fields = vec![
        ("jsonrpc".to_string(), Json::Str("2.0".to_string())),
        ("id".to_string(), Json::UInt(id)),
    ];
    if let Some(tp) = traceparent {
        fields.push(("traceparent".to_string(), Json::Str(tp.to_string())));
    }
    fields.push(("result".to_string(), result));
    Json::Obj(fields).encode()
}

/// The `traceparent` echoed in a response body, if any.
pub fn response_traceparent(text: &str) -> Option<String> {
    parse_json(text)
        .ok()?
        .get("traceparent")
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Encode an error response.
pub fn err_response(id: u64, code: i64, message: &str) -> String {
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::Str("2.0".to_string())),
        ("id".to_string(), Json::UInt(id)),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("code".to_string(), Json::Num(code as f64)),
                ("message".to_string(), Json::Str(message.to_string())),
            ]),
        ),
    ])
    .encode()
}

/// Decode a response body: `Ok(result)` or `Err(message)`.
pub fn parse_response(text: &str) -> Result<Json, String> {
    let v = parse_json(text).map_err(|e| format!("invalid JSON response: {e}"))?;
    if let Some(err) = v.get("error") {
        return Err(err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("unknown error")
            .to_string());
    }
    v.get("result")
        .cloned()
        .ok_or_else(|| "response has neither result nor error".to_string())
}

/// Lower-case hex encoding of arbitrary bytes (evidence submission
/// payloads travel as hex strings inside JSON). Delegates to the
/// `pda-crypto` LUT encoder: evidence batches route up to ~16 MiB
/// through here, and the old per-byte `format!("{b:02x}")` paid one
/// heap allocation per byte (the `hex_encoding` criterion bench pins
/// the delta).
pub fn to_hex(bytes: &[u8]) -> String {
    pda_crypto::hex_encode(bytes)
}

/// Decode lower/upper-case hex; `None` on odd length or non-hex bytes.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_is_byte_identical() {
        let r = RpcRequest::new(
            7,
            "appraise",
            Json::Obj(vec![("nonce".to_string(), Json::UInt(9))]),
        );
        let text = r.encode();
        let back = RpcRequest::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn paramless_request_round_trips() {
        let r = RpcRequest::new(1, "health", Json::Null);
        let back = RpcRequest::parse(&r.encode()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.encode(), r.encode());
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(matches!(RpcRequest::parse(""), Err(RpcError::BadJson(_))));
        assert!(matches!(
            RpcRequest::parse("[1,2]"),
            Err(RpcError::BadRequest(_))
        ));
        assert!(matches!(
            RpcRequest::parse("{\"jsonrpc\": \"1.0\", \"id\": 1, \"method\": \"x\"}"),
            Err(RpcError::BadRequest(_))
        ));
        assert!(matches!(
            RpcRequest::parse("{\"jsonrpc\": \"2.0\", \"method\": \"x\"}"),
            Err(RpcError::BadRequest(_))
        ));
        assert!(matches!(
            RpcRequest::parse("{\"jsonrpc\": \"2.0\", \"id\": 1}"),
            Err(RpcError::BadRequest(_))
        ));
    }

    #[test]
    fn responses_encode_and_decode() {
        let ok = ok_response(3, Json::Bool(true));
        assert_eq!(parse_response(&ok), Ok(Json::Bool(true)));
        let err = err_response(3, -32600, "nope");
        assert_eq!(parse_response(&err), Err("nope".to_string()));
    }

    #[test]
    fn traceparent_round_trips_and_is_echoed() {
        let tp = pda_telemetry::TraceCtx::for_nonce(42).traceparent();
        let r = RpcRequest::new(
            5,
            "appraise",
            Json::Obj(vec![("nonce".to_string(), Json::UInt(42))]),
        )
        .with_traceparent(tp.clone());
        let text = r.encode();
        let back = RpcRequest::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.encode(), text, "traced round trip is byte-identical");

        let reply = ok_response_traced(5, Json::Bool(true), back.traceparent.as_deref());
        assert_eq!(parse_response(&reply), Ok(Json::Bool(true)));
        assert_eq!(response_traceparent(&reply), Some(tp));
        assert_eq!(
            response_traceparent(&ok_response(5, Json::Bool(true))),
            None,
            "untraced responses carry no echo"
        );
    }

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes));
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex");
        assert_eq!(from_hex(""), Some(Vec::new()));
    }
}
