//! Blocking client for the appraisal service.
//!
//! Persistent by default: the client keeps a small pool of kept-alive
//! TCP connections to the service and frames responses by
//! `Content-Length` (not read-to-EOF), so a sustained stream of small
//! RPCs — exactly the continuous-attestation workload — pays the TCP
//! handshake once per connection instead of once per call. A pooled
//! connection that went stale (server restarted, idle-timed out, hit
//! its request cap) is detected on first use and replaced with a fresh
//! one, transparently. `with_keep_alive(false)` restores the old
//! one-connection-per-call behaviour for comparison; it is what the
//! E18 sweep's `close` rows measure.
//!
//! The client is thread-safe: the pool is a mutex-guarded stack, and
//! concurrent callers simply check out distinct connections.

use crate::http::{parse_response_bytes, ParsedResponse, ResponseParse};
use crate::rpc::{parse_response, response_traceparent, to_hex, RpcRequest};
use pda_pera::EvidenceRecord;
use pda_telemetry::json::Json;
use pda_telemetry::TraceCtx;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Per-call I/O timeout — also bounds `connect`, so a blackholed
/// service address fails within this bound instead of the OS default
/// (which can be minutes).
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Idle connections kept for reuse. More concurrent callers than this
/// simply reconnect; fewer and the pool stays warm.
const POOL_SIZE: usize = 4;

/// A client bound to one service address.
pub struct SvcClient {
    addr: SocketAddr,
    next_id: AtomicU64,
    keep_alive: bool,
    /// Idle kept-alive connections, most recently used last.
    pool: Mutex<Vec<TcpStream>>,
    /// Calls that reused a pooled connection (observability for tests
    /// and the churn driver).
    reused: AtomicU64,
}

impl SvcClient {
    /// Client for the service at `addr`, with connection reuse on.
    pub fn new(addr: SocketAddr) -> SvcClient {
        SvcClient {
            addr,
            next_id: AtomicU64::new(1),
            keep_alive: true,
            pool: Mutex::new(Vec::new()),
            reused: AtomicU64::new(0),
        }
    }

    /// Toggle connection reuse. With `false` every call opens (and
    /// closes) its own TCP connection, as the client did before the
    /// persistent-connection plane existed.
    pub fn with_keep_alive(mut self, keep_alive: bool) -> SvcClient {
        self.keep_alive = keep_alive;
        self
    }

    /// Calls so far that reused a pooled connection.
    pub fn reused_connections(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Issue one JSON-RPC call; returns the `result` value.
    pub fn call(&self, method: &str, params: Json) -> Result<Json, String> {
        self.call_traced(method, params, None).map(|(v, _)| v)
    }

    /// Issue one JSON-RPC call carrying a `traceparent` header;
    /// returns the `result` value plus the traceparent the service
    /// echoed back (proof it joined the caller's trace).
    pub fn call_traced(
        &self,
        method: &str,
        params: Json,
        ctx: Option<&TraceCtx>,
    ) -> Result<(Json, Option<String>), String> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut req = RpcRequest::new(id, method, params);
        if let Some(ctx) = ctx {
            req = req.with_traceparent(ctx.traceparent());
        }
        let body = req.encode();
        let wire = format!(
            "POST /rpc HTTP/1.1\r\nHost: pda-svc\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
            body.len(),
            self.connection_header(),
            body
        );
        let reply = self.exchange(wire.as_bytes())?;
        let body =
            std::str::from_utf8(&reply.body).map_err(|_| "reply body is not UTF-8".to_string())?;
        Ok((parse_response(body)?, response_traceparent(body)))
    }

    /// Submit evidence records (hex-encoded wire form).
    pub fn submit_evidence(&self, records: &[EvidenceRecord]) -> Result<Json, String> {
        self.submit_evidence_traced(records).map(|(v, _)| v)
    }

    /// [`submit_evidence`](Self::submit_evidence), traced: stamps the
    /// nonce-derived trace context of the first record on the request
    /// and returns the service's echo alongside the result.
    pub fn submit_evidence_traced(
        &self,
        records: &[EvidenceRecord],
    ) -> Result<(Json, Option<String>), String> {
        let mut bytes = Vec::new();
        for r in records {
            r.write_wire(&mut bytes);
        }
        let ctx = records.first().map(|r| TraceCtx::for_nonce(r.nonce.0));
        self.call_traced(
            "submit-evidence",
            Json::Obj(vec![("records".to_string(), Json::Str(to_hex(&bytes)))]),
            ctx.as_ref(),
        )
    }

    /// Request a quorum appraisal of everything submitted for `nonce`.
    pub fn appraise(&self, nonce: u64) -> Result<Json, String> {
        self.appraise_traced(nonce).map(|(v, _)| v)
    }

    /// [`appraise`](Self::appraise), traced: the request carries the
    /// nonce-derived trace context, so the service's spans join the
    /// same trace the switch stamped at measurement time.
    pub fn appraise_traced(&self, nonce: u64) -> Result<(Json, Option<String>), String> {
        self.call_traced(
            "appraise",
            Json::Obj(vec![("nonce".to_string(), Json::UInt(nonce))]),
            Some(&TraceCtx::for_nonce(nonce)),
        )
    }

    /// Query the audit log, optionally filtered by subject substring.
    pub fn query_audit_log(
        &self,
        subject: Option<&str>,
        limit: Option<u64>,
    ) -> Result<Json, String> {
        let mut fields = Vec::new();
        if let Some(s) = subject {
            fields.push(("subject".to_string(), Json::Str(s.to_string())));
        }
        if let Some(l) = limit {
            fields.push(("limit".to_string(), Json::UInt(l)));
        }
        self.call("query-audit-log", Json::Obj(fields))
    }

    /// Service health probe.
    pub fn health(&self) -> Result<Json, String> {
        self.call("health", Json::Null)
    }

    /// Metrics snapshot (JSON form).
    pub fn metrics(&self) -> Result<Json, String> {
        self.call("metrics", Json::Null)
    }

    /// Ask the service to stop.
    pub fn shutdown(&self) -> Result<Json, String> {
        self.call("shutdown", Json::Null)
    }

    /// Fetch the Prometheus text rendition from GET `/metrics`.
    pub fn metrics_text(&self) -> Result<String, String> {
        let wire = format!(
            "GET /metrics HTTP/1.1\r\nHost: pda-svc\r\nConnection: {}\r\n\r\n",
            self.connection_header()
        );
        let reply = self.exchange(wire.as_bytes())?;
        String::from_utf8(reply.body).map_err(|_| "reply body is not UTF-8".to_string())
    }

    fn connection_header(&self) -> &'static str {
        if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        }
    }

    /// One request/response exchange. With keep-alive, a pooled
    /// connection is tried first; if it went stale (the server closed
    /// it since last use), the call transparently retries once on a
    /// fresh connection. The response is `Content-Length`-framed, so
    /// the connection can go straight back into the pool.
    fn exchange(&self, wire: &[u8]) -> Result<ParsedResponse, String> {
        if self.keep_alive {
            if let Some(conn) = self.checkout() {
                // A stale pooled connection (the server closed it
                // since last use) falls through to a reconnect and
                // retries the (idempotent) exchange on a fresh socket.
                if let Ok(reply) = self.try_exchange(conn, wire) {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(reply);
                }
            }
        }
        let conn = self.connect()?;
        self.try_exchange(conn, wire)
            .map_err(|e| format!("{e} ({})", self.addr))
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let conn = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        conn.set_read_timeout(Some(IO_TIMEOUT)).ok();
        conn.set_write_timeout(Some(IO_TIMEOUT)).ok();
        conn.set_nodelay(true).ok();
        Ok(conn)
    }

    /// Write the request and read exactly one framed response. On
    /// success the connection is returned to the pool unless the
    /// server announced a close.
    fn try_exchange(&self, mut conn: TcpStream, wire: &[u8]) -> Result<ParsedResponse, String> {
        conn.write_all(wire).map_err(|e| format!("send: {e}"))?;
        conn.flush().map_err(|e| format!("send: {e}"))?;
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        loop {
            match parse_response_bytes(&buf) {
                ResponseParse::Complete(reply, _used) => {
                    if self.keep_alive && !reply.closes_connection() {
                        self.checkin(conn);
                    }
                    return Ok(*reply);
                }
                ResponseParse::Incomplete => match conn.read(&mut chunk) {
                    Ok(0) => return Err("recv: connection closed mid-response".to_string()),
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) => return Err(format!("recv: {e}")),
                },
                ResponseParse::Invalid(r) => return Err(format!("recv: bad response: {r}")),
            }
        }
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().ok()?.pop()
    }

    fn checkin(&self, conn: TcpStream) {
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < POOL_SIZE {
                pool.push(conn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    /// A blackholed address must fail within the I/O bound, not the
    /// OS connect default (minutes). 203.0.113.0/24 is TEST-NET-3
    /// (RFC 5737): reserved, never routed — depending on the network
    /// stack the connect either times out at our bound or is rejected
    /// immediately; both are success here.
    #[test]
    fn connect_is_bounded_on_a_blackholed_address() {
        let addr: SocketAddr = "203.0.113.1:9".parse().unwrap();
        let client = SvcClient::new(addr);
        let start = Instant::now();
        let result = client.health();
        assert!(result.is_err(), "nothing listens on TEST-NET-3");
        assert!(
            start.elapsed() < IO_TIMEOUT + Duration::from_secs(5),
            "connect exceeded its timeout bound: {:?}",
            start.elapsed()
        );
    }

    /// A listener that accepts and immediately closes makes every
    /// pooled exchange fail; the client must surface the error rather
    /// than hang, and must not pool dead sockets.
    #[test]
    fn slammed_connections_error_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for conn in listener.incoming().take(2) {
                drop(conn); // slam
            }
        });
        let client = SvcClient::new(addr);
        assert!(client.health().is_err());
        assert!(client.reused_connections() == 0);
        drop(client);
        // Unblock the listener's second accept.
        let _ = TcpStream::connect(addr);
        server.join().unwrap();
    }
}
