//! Blocking client for the appraisal service.
//!
//! One TCP connection per call (the server speaks
//! `Connection: close`), so the client is stateless and trivially
//! thread-safe to clone around.

use crate::rpc::{parse_response, response_traceparent, to_hex, RpcRequest};
use pda_pera::EvidenceRecord;
use pda_telemetry::json::Json;
use pda_telemetry::TraceCtx;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-call I/O timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A client bound to one service address.
pub struct SvcClient {
    addr: SocketAddr,
    next_id: AtomicU64,
}

impl SvcClient {
    /// Client for the service at `addr`.
    pub fn new(addr: SocketAddr) -> SvcClient {
        SvcClient {
            addr,
            next_id: AtomicU64::new(1),
        }
    }

    /// Issue one JSON-RPC call; returns the `result` value.
    pub fn call(&self, method: &str, params: Json) -> Result<Json, String> {
        self.call_traced(method, params, None).map(|(v, _)| v)
    }

    /// Issue one JSON-RPC call carrying a `traceparent` header;
    /// returns the `result` value plus the traceparent the service
    /// echoed back (proof it joined the caller's trace).
    pub fn call_traced(
        &self,
        method: &str,
        params: Json,
        ctx: Option<&TraceCtx>,
    ) -> Result<(Json, Option<String>), String> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut req = RpcRequest::new(id, method, params);
        if let Some(ctx) = ctx {
            req = req.with_traceparent(ctx.traceparent());
        }
        let body = req.encode();
        let wire = format!(
            "POST /rpc HTTP/1.1\r\nHost: pda-svc\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let reply = self.exchange(wire.as_bytes())?;
        let body = http_body(&reply)?;
        Ok((parse_response(body)?, response_traceparent(body)))
    }

    /// Submit evidence records (hex-encoded wire form).
    pub fn submit_evidence(&self, records: &[EvidenceRecord]) -> Result<Json, String> {
        self.submit_evidence_traced(records).map(|(v, _)| v)
    }

    /// [`submit_evidence`](Self::submit_evidence), traced: stamps the
    /// nonce-derived trace context of the first record on the request
    /// and returns the service's echo alongside the result.
    pub fn submit_evidence_traced(
        &self,
        records: &[EvidenceRecord],
    ) -> Result<(Json, Option<String>), String> {
        let mut bytes = Vec::new();
        for r in records {
            r.write_wire(&mut bytes);
        }
        let ctx = records.first().map(|r| TraceCtx::for_nonce(r.nonce.0));
        self.call_traced(
            "submit-evidence",
            Json::Obj(vec![("records".to_string(), Json::Str(to_hex(&bytes)))]),
            ctx.as_ref(),
        )
    }

    /// Request a quorum appraisal of everything submitted for `nonce`.
    pub fn appraise(&self, nonce: u64) -> Result<Json, String> {
        self.appraise_traced(nonce).map(|(v, _)| v)
    }

    /// [`appraise`](Self::appraise), traced: the request carries the
    /// nonce-derived trace context, so the service's spans join the
    /// same trace the switch stamped at measurement time.
    pub fn appraise_traced(&self, nonce: u64) -> Result<(Json, Option<String>), String> {
        self.call_traced(
            "appraise",
            Json::Obj(vec![("nonce".to_string(), Json::UInt(nonce))]),
            Some(&TraceCtx::for_nonce(nonce)),
        )
    }

    /// Query the audit log, optionally filtered by subject substring.
    pub fn query_audit_log(
        &self,
        subject: Option<&str>,
        limit: Option<u64>,
    ) -> Result<Json, String> {
        let mut fields = Vec::new();
        if let Some(s) = subject {
            fields.push(("subject".to_string(), Json::Str(s.to_string())));
        }
        if let Some(l) = limit {
            fields.push(("limit".to_string(), Json::UInt(l)));
        }
        self.call("query-audit-log", Json::Obj(fields))
    }

    /// Service health probe.
    pub fn health(&self) -> Result<Json, String> {
        self.call("health", Json::Null)
    }

    /// Metrics snapshot (JSON form).
    pub fn metrics(&self) -> Result<Json, String> {
        self.call("metrics", Json::Null)
    }

    /// Ask the service to stop.
    pub fn shutdown(&self) -> Result<Json, String> {
        self.call("shutdown", Json::Null)
    }

    /// Fetch the Prometheus text rendition from GET `/metrics`.
    pub fn metrics_text(&self) -> Result<String, String> {
        let reply =
            self.exchange(b"GET /metrics HTTP/1.1\r\nHost: pda-svc\r\nConnection: close\r\n\r\n")?;
        Ok(http_body(&reply)?.to_string())
    }

    fn exchange(&self, wire: &[u8]) -> Result<String, String> {
        let mut conn =
            TcpStream::connect(self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        conn.set_read_timeout(Some(IO_TIMEOUT)).ok();
        conn.set_write_timeout(Some(IO_TIMEOUT)).ok();
        conn.write_all(wire).map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        conn.read_to_string(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        Ok(reply)
    }
}

/// Split an HTTP reply at the head/body boundary.
fn http_body(reply: &str) -> Result<&str, String> {
    reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .ok_or_else(|| "malformed HTTP reply (no body)".to_string())
}
