//! Multi-appraiser federation: N independent appraisers, one quorum.
//!
//! Each [`Appraiser`] holds its *own* golden store and key registry and
//! runs the full `pda_ra` appraisal machinery over submitted evidence.
//! The coordinator combines the independent verdicts under a
//! [`Quorum`] rule, so a single faulty or corrupted appraiser — wrong
//! golden values, stale keys, outright malice — is out-voted rather
//! than trusted. Every individual verdict lands in the shared audit
//! log under the appraiser's own subject (`svc/a1`, …), so dissent is
//! visible and attributable, followed by one combined `svc/quorum`
//! event.

use pda_crypto::keyreg::KeyRegistry;
use pda_crypto::nonce::Nonce;
use pda_pera::config::DetailLevel;
use pda_pera::{EvidenceRecord, GoldenStore};
use pda_ra::appraise::AppraisalResult;
use pda_telemetry::Telemetry;
use std::fmt;

/// How many appraisers must say *yes* for the federation to say yes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quorum {
    /// Strict majority (`n/2 + 1`).
    Majority,
    /// Every appraiser must agree.
    Unanimous,
    /// At least `k` of the `n` appraisers.
    KOfN(usize),
}

impl Quorum {
    /// Yes-votes required for a federation of `n` appraisers.
    pub fn required(&self, n: usize) -> usize {
        match self {
            Quorum::Majority => n / 2 + 1,
            Quorum::Unanimous => n,
            Quorum::KOfN(k) => (*k).clamp(1, n.max(1)),
        }
    }

    /// Parse `majority`, `unanimous`, or `K-of-N` (e.g. `2-of-3`;
    /// only `K` is read — `N` is fixed by the federation size).
    pub fn parse(s: &str) -> Option<Quorum> {
        match s {
            "majority" => Some(Quorum::Majority),
            "unanimous" => Some(Quorum::Unanimous),
            _ => {
                let (k, _) = s.split_once("-of-")?;
                Some(Quorum::KOfN(k.parse().ok().filter(|&k| k > 0)?))
            }
        }
    }
}

impl fmt::Display for Quorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quorum::Majority => write!(f, "majority"),
            Quorum::Unanimous => write!(f, "unanimous"),
            Quorum::KOfN(k) => write!(f, "{k}-of-n"),
        }
    }
}

/// One independent appraiser instance.
pub struct Appraiser {
    /// Instance name (audit-log subject is `svc/<name>`).
    pub name: String,
    /// This instance's reference values.
    pub golden: GoldenStore,
    /// This instance's view of the fleet's verification keys.
    pub registry: KeyRegistry,
}

impl Appraiser {
    /// Build an appraiser over its own copies of the reference state.
    pub fn new(name: impl Into<String>, golden: GoldenStore, registry: KeyRegistry) -> Appraiser {
        Appraiser {
            name: name.into(),
            golden,
            registry,
        }
    }

    /// Corrupt this appraiser's golden store: overwrite one switch's
    /// expectation with garbage, turning it into the deliberately
    /// faulty federation member the quorum must out-vote.
    pub fn poison(&mut self, switch: &str, level: DetailLevel) {
        self.golden.expect(
            switch,
            level,
            pda_crypto::digest::Digest::of(b"poisoned golden value"),
        );
    }

    /// Run a full independent appraisal of `records`.
    pub fn appraise(
        &self,
        records: &[EvidenceRecord],
        nonce: Nonce,
        chained: bool,
        telemetry: &Telemetry,
    ) -> AppraisalResult {
        pda_ra::appraise::appraise_records(
            records,
            &self.registry,
            &self.golden,
            nonce,
            chained,
            telemetry,
            &format!("svc/{}", self.name),
        )
    }
}

/// The combined federation verdict for one evidence chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumVerdict {
    /// Did the quorum accept the evidence?
    pub ok: bool,
    /// Yes-votes.
    pub yes: usize,
    /// Federation size.
    pub total: usize,
    /// Yes-votes needed under the active quorum rule.
    pub required: usize,
    /// Names of appraisers whose individual verdict disagreed with
    /// the combined one.
    pub dissenters: Vec<String>,
    /// First failure cause from each no-voting appraiser, as
    /// `name: cause` lines.
    pub causes: Vec<String>,
}

/// A federation of appraisers plus the quorum rule combining them.
pub struct Federation {
    /// The member appraisers.
    pub appraisers: Vec<Appraiser>,
    /// Active quorum rule.
    pub quorum: Quorum,
}

impl Federation {
    /// Appraise `records` on every member independently and combine.
    ///
    /// Audit trail: one `Appraisal` event per member (its own
    /// verdict), then one `svc/quorum` event with the combined
    /// outcome; `svc.dissent` counts members that disagreed with the
    /// quorum.
    pub fn appraise(
        &self,
        records: &[EvidenceRecord],
        nonce: Nonce,
        chained: bool,
        telemetry: &Telemetry,
    ) -> QuorumVerdict {
        let total = self.appraisers.len();
        let required = self.quorum.required(total);
        let mut yes = 0usize;
        let mut votes = Vec::with_capacity(total);
        let mut causes = Vec::new();
        let mut checks = 0u64;
        // All members share the nonce-derived trace the switch stamped
        // at measurement time; each gets its own child span.
        let ctx = pda_telemetry::TraceCtx::for_nonce(nonce.0);
        for (i, a) in self.appraisers.iter().enumerate() {
            let mut span = telemetry.span_with(|| format!("svc.appraiser.{}", a.name));
            if span.is_active() {
                ctx.child(&a.name, i as u64).stamp(&mut span);
            }
            let r = a.appraise(records, nonce, chained, telemetry);
            checks += r.checks;
            if r.ok {
                yes += 1;
            } else if let Some(f) = r.failures.first() {
                causes.push(format!("{}: {f}", a.name));
            }
            votes.push((a.name.clone(), r.ok));
        }
        let ok = yes >= required;
        let dissenters: Vec<String> = votes
            .iter()
            .filter(|(_, v)| *v != ok)
            .map(|(n, _)| n.clone())
            .collect();
        if let Some(reg) = telemetry.registry() {
            reg.counter("svc.dissent").add(dissenters.len() as u64);
        }
        if telemetry.enabled() {
            let mut fields = ctx.child("quorum", 0).fields();
            fields.push(("ok".to_string(), ok.into()));
            fields.push(("yes".to_string(), (yes as u64).into()));
            fields.push(("required".to_string(), (required as u64).into()));
            fields.push(("dissent".to_string(), (dissenters.len() as u64).into()));
            telemetry.event("svc.quorum", fields);
        }
        telemetry.audit_with(|| pda_telemetry::AuditEvent::Appraisal {
            subject: "svc/quorum".to_string(),
            nonce: Some(nonce.0),
            ok,
            checks,
            cause: if ok {
                None
            } else {
                Some(format!(
                    "quorum not met: {yes}/{total} yes, {required} required"
                ))
            },
            trace: Some(ctx.trace.to_hex()),
        });
        QuorumVerdict {
            ok,
            yes,
            total,
            required,
            dissenters,
            causes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_thresholds() {
        assert_eq!(Quorum::Majority.required(3), 2);
        assert_eq!(Quorum::Majority.required(4), 3);
        assert_eq!(Quorum::Unanimous.required(3), 3);
        assert_eq!(Quorum::KOfN(2).required(3), 2);
        assert_eq!(Quorum::KOfN(9).required(3), 3, "k clamps to n");
        assert_eq!(Quorum::KOfN(0).required(3), 1, "k clamps up to 1");
    }

    #[test]
    fn quorum_parses() {
        assert_eq!(Quorum::parse("majority"), Some(Quorum::Majority));
        assert_eq!(Quorum::parse("unanimous"), Some(Quorum::Unanimous));
        assert_eq!(Quorum::parse("2-of-3"), Some(Quorum::KOfN(2)));
        assert_eq!(Quorum::parse("0-of-3"), None);
        assert_eq!(Quorum::parse("x-of-3"), None);
        assert_eq!(Quorum::parse("twice"), None);
    }
}
