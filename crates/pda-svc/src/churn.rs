//! Churn-driven continuous attestation (the E18 load generator).
//!
//! Streams evidence through a *live* service while the attested fleet
//! churns the way real networks do: every epoch the fleet restarts
//! (fresh switches, same identities), links go lossy, the control
//! channel drops and retries, switches go down mid-epoch, and every
//! few epochs a switch comes back with a rogue program loaded — the
//! paper's program-swap attack, which the quorum must catch.
//!
//! All submission and appraisal happens over real TCP through
//! [`SvcClient`]; latencies are measured at the client (full RTT
//! including the federation's appraisal work).

use crate::client::SvcClient;
use crate::fleet::standard_fleet;
use pda_crypto::nonce::Nonce;
use pda_dataplane::programs;
use pda_netsim::{ControlRetryPolicy, DeviceKind, EvidenceMode, FaultPlan, LinearPath, LinkFaults};
use pda_pera::EvidenceRecord;
use pda_telemetry::json::Json;
use pda_telemetry::Telemetry;
use std::time::Instant;

/// Churn-run shape.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Epochs; each is a fresh fleet instance (a restart).
    pub epochs: usize,
    /// Attested packets per epoch (one appraisal each).
    pub packets_per_epoch: usize,
    /// Switches in the fleet's path.
    pub hops: usize,
    /// Fault-plane seed (varied per epoch).
    pub seed: u64,
    /// Per-link data-plane loss probability.
    pub link_loss: f64,
    /// Out-of-band control-channel loss probability (evidence path);
    /// retransmits per [`ControlRetryPolicy::default`] cover it.
    pub control_loss: f64,
    /// Every Nth epoch, `sw1` restarts with a rogue program
    /// (0 = never).
    pub rogue_every: usize,
    /// Take a mid-path switch down for a window each epoch.
    pub switch_down: bool,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            epochs: 10,
            packets_per_epoch: 10,
            hops: 3,
            seed: 42,
            link_loss: 0.05,
            control_loss: 0.2,
            rogue_every: 4,
            switch_down: false,
        }
    }
}

/// What a churn run did and how fast the service kept up.
#[derive(Clone, Debug, Default)]
pub struct ChurnReport {
    /// Epochs driven.
    pub epochs: usize,
    /// Epochs where `sw1` ran the rogue program.
    pub rogue_epochs: usize,
    /// Evidence records submitted over the wire.
    pub records_submitted: u64,
    /// Appraisals requested (one per surviving packet nonce).
    pub appraisals: u64,
    /// Quorum said yes.
    pub accepted: u64,
    /// Quorum said no.
    pub rejected: u64,
    /// Verdicts matching ground truth where ground truth is knowable:
    /// complete clean chains must be accepted, complete rogue chains
    /// rejected. Loss-truncated chains are indeterminate — the service
    /// can only judge the evidence that arrived — and count as correct
    /// either way (they are tallied in `incomplete_chains`).
    pub correct: u64,
    /// Rogue-epoch appraisals correctly rejected.
    pub rogue_detected: u64,
    /// Chains that lost hop records to faults before submission.
    pub incomplete_chains: u64,
    /// Packets the data plane dropped outright (no appraisal).
    pub packets_lost: u64,
    /// Wall-clock of the appraisal phase, nanoseconds.
    pub elapsed_ns: u64,
    /// Client-observed verdict latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile verdict latency, nanoseconds.
    pub p99_ns: u64,
    /// Mean verdict latency, nanoseconds.
    pub mean_ns: u64,
    /// Sustained appraisal throughput.
    pub appraisals_per_sec: f64,
}

/// Reload `sw1` with the Athens-affair wiretap variant: same identity
/// and signing keys, different (malicious) program — exactly what
/// golden-value appraisal exists to catch. Public so `pda client
/// submit --rogue` can stage the same attack by hand.
pub fn rogue_reload(fleet: &mut LinearPath) {
    for node in &mut fleet.sim.topo.nodes {
        if node.name == "sw1" {
            if let DeviceKind::Pera(sw) = &mut node.kind {
                let prog = programs::rogue_wiretap(&[(0, 0, 1)], &[0x0a00_0001], 9);
                sw.regs = prog.make_registers();
                sw.program = prog;
            }
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive `config.epochs` of churn through the service at `client`.
pub fn run_churn(client: &SvcClient, config: &ChurnConfig) -> Result<ChurnReport, String> {
    run_churn_with(client, config, &Telemetry::off())
}

/// [`run_churn`] with a telemetry handle attached to every epoch's
/// fleet, so one subscriber observes the whole evidence lifecycle:
/// the switch-side `pera.attest` spans and channel send/retry events
/// land on the same handle that (when it also backs the service) sees
/// the federation spans — one trace from measurement to verdict.
pub fn run_churn_with(
    client: &SvcClient,
    config: &ChurnConfig,
    telemetry: &Telemetry,
) -> Result<ChurnReport, String> {
    let mut report = ChurnReport {
        epochs: config.epochs,
        ..ChurnReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    let run_start = Instant::now();

    for epoch in 0..config.epochs {
        // A fresh fleet IS the restart: same names, same deterministic
        // keys, state gone.
        let mut fleet = standard_fleet(config.hops);
        if telemetry.enabled() {
            fleet.sim.attach_telemetry(telemetry.clone());
        }
        let rogue = config.rogue_every > 0 && (epoch + 1) % config.rogue_every == 0;
        if rogue {
            rogue_reload(&mut fleet);
            report.rogue_epochs += 1;
        }
        let mut plan = FaultPlan::new(config.seed.wrapping_add(epoch as u64))
            .with_default_link(LinkFaults::lossy(config.link_loss))
            .with_control_loss(config.control_loss)
            .with_control_retry(ControlRetryPolicy::default());
        if config.switch_down && config.hops >= 2 {
            // A mid-path switch flaps for a window early in the epoch.
            let victim = fleet.switches[config.hops / 2];
            plan = plan.with_switch_down(victim, 5_000, 30_000);
        }
        fleet.sim.install_faults(plan);

        let appraiser = fleet.appraiser;
        let base_nonce = (epoch * config.packets_per_epoch) as u64 + 1;
        for i in 0..config.packets_per_epoch {
            let nonce = Nonce(base_nonce + i as u64);
            fleet.send_attested(nonce, EvidenceMode::OutOfBand { appraiser }, b"churn");
        }

        // Everything the collector saw this epoch, in one submission —
        // possibly duplicated by control retries; the service
        // reassembles.
        let collected: Vec<EvidenceRecord> = fleet.sim.evidence_at(appraiser).to_vec();
        if collected.is_empty() {
            report.packets_lost += config.packets_per_epoch as u64;
            continue;
        }
        report.records_submitted += collected.len() as u64;
        client.submit_evidence(&collected)?;

        for i in 0..config.packets_per_epoch {
            let nonce = base_nonce + i as u64;
            let complete = {
                let mut names: Vec<&str> = collected
                    .iter()
                    .filter(|r| r.nonce.0 == nonce)
                    .map(|r| r.switch.as_str())
                    .collect();
                names.sort_unstable();
                names.dedup();
                names.len() == config.hops
            };
            if !complete {
                report.incomplete_chains += 1;
            }
            if !collected.iter().any(|r| r.nonce.0 == nonce) {
                report.packets_lost += 1;
                continue;
            }
            let start = Instant::now();
            let verdict = client.appraise(nonce)?;
            latencies.push(start.elapsed().as_nanos() as u64);
            report.appraisals += 1;
            let ok = verdict.get("ok").and_then(Json::as_bool).unwrap_or(false);
            if ok {
                report.accepted += 1;
            } else {
                report.rejected += 1;
            }
            match (complete, rogue) {
                (false, _) => report.correct += 1, // indeterminate: truncated evidence
                (true, true) if !ok => report.correct += 1,
                (true, false) if ok => report.correct += 1,
                _ => {}
            }
            if rogue && !ok {
                report.rogue_detected += 1;
            }
        }
    }

    report.elapsed_ns = run_start.elapsed().as_nanos() as u64;
    latencies.sort_unstable();
    report.p50_ns = percentile(&latencies, 0.50);
    report.p99_ns = percentile(&latencies, 0.99);
    report.mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    report.appraisals_per_sec = if report.elapsed_ns == 0 {
        0.0
    } else {
        report.appraisals as f64 * 1e9 / report.elapsed_ns as f64
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::serve;
    use crate::service::{AppraisalService, SvcConfig};
    use pda_telemetry::Telemetry;
    use std::sync::Arc;

    #[test]
    fn churn_streams_through_a_live_service() {
        let svc = Arc::new(AppraisalService::new(
            SvcConfig::default(),
            Telemetry::collecting(),
        ));
        let mut server = serve("127.0.0.1:0", 2, Arc::clone(&svc)).unwrap();
        let client = SvcClient::new(server.addr);
        let config = ChurnConfig {
            epochs: 4,
            packets_per_epoch: 3,
            rogue_every: 2,
            ..ChurnConfig::default()
        };
        let report = run_churn(&client, &config).expect("churn run completes");
        server.stop();

        assert_eq!(report.rogue_epochs, 2);
        assert!(report.appraisals > 0, "some chains survived the faults");
        assert_eq!(
            report.correct, report.appraisals,
            "every verdict matched expectation: {report:?}"
        );
        assert!(
            report.rogue_detected > 0 || report.packets_lost >= 6,
            "rogue epochs detected unless wholly lost: {report:?}"
        );
        assert!(report.p99_ns >= report.p50_ns);
    }

    #[test]
    fn faultless_churn_appraises_everything() {
        let svc = Arc::new(AppraisalService::new(
            SvcConfig::default(),
            Telemetry::collecting(),
        ));
        let mut server = serve("127.0.0.1:0", 2, Arc::clone(&svc)).unwrap();
        let client = SvcClient::new(server.addr);
        let config = ChurnConfig {
            epochs: 2,
            packets_per_epoch: 5,
            link_loss: 0.0,
            control_loss: 0.0,
            rogue_every: 0,
            ..ChurnConfig::default()
        };
        let report = run_churn(&client, &config).expect("churn run completes");
        server.stop();

        assert_eq!(report.appraisals, 10);
        assert_eq!(report.accepted, 10);
        assert_eq!(report.packets_lost, 0);
        assert_eq!(report.incomplete_chains, 0);
        assert!(report.appraisals_per_sec > 0.0);
    }
}
