//! Fleet construction and reference-state enrollment.
//!
//! The service appraises evidence produced by a simulated PERA fleet.
//! Both sides of the E18 experiment — the serving process and the
//! submitting client — must agree on the fleet's verification keys and
//! golden values *without* exchanging them: PERA switch signing keys
//! are deterministic functions of the switch name, so each side
//! rebuilds the identical enrollment from the topology shape alone.

use pda_crypto::digest::Digest;
use pda_crypto::keyreg::KeyRegistry;
use pda_netsim::{linear_path, DeviceKind, LinearPath};
use pda_pera::config::{DetailLevel, PeraConfig, Sampling};
use pda_pera::GoldenStore;

/// Build the standard service fleet: a linear path of `hops` PERA
/// switches attesting Hardware+Program on every packet — continuous
/// attestation wants a verdict per packet, not per flow.
pub fn standard_fleet(hops: usize) -> LinearPath {
    let config = PeraConfig::default().with_sampling(Sampling::PerPacket);
    linear_path(hops, &config, &[])
}

/// Enroll golden values for every PERA switch in the fleet at the
/// levels the default config attests (Hardware, Program) — trusted
/// setup reading current values, mirroring `pda-core`'s enrollment.
pub fn enroll_fleet_golden(fleet: &LinearPath) -> GoldenStore {
    let mut golden = GoldenStore::new();
    for node in &fleet.sim.topo.nodes {
        if let DeviceKind::Pera(sw) = &node.kind {
            golden.expect(
                &node.name,
                DetailLevel::Hardware,
                Digest::of_parts(&[b"hw:", sw.hardware_id.as_bytes()]),
            );
            golden.expect(&node.name, DetailLevel::Program, sw.program.digest());
        }
    }
    golden
}

/// The fleet's key registry (deterministic: rebuilt identically by
/// any process that constructs the same fleet).
pub fn fleet_registry(fleet: &LinearPath) -> KeyRegistry {
    fleet.sim.registry.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enrollment_is_deterministic_across_rebuilds() {
        let a = standard_fleet(3);
        let b = standard_fleet(3);
        let ga = enroll_fleet_golden(&a);
        let gb = enroll_fleet_golden(&b);
        for sw in ["sw1", "sw2", "sw3"] {
            for level in [DetailLevel::Hardware, DetailLevel::Program] {
                assert!(ga.expected(sw, level).is_some(), "{sw} {level:?} enrolled");
                assert_eq!(ga.expected(sw, level), gb.expected(sw, level));
            }
        }
        assert_eq!(fleet_registry(&a).len(), fleet_registry(&b).len());
    }
}
