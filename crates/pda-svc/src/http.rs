//! Minimal HTTP/1.1 server-side codec on untrusted bytes.
//!
//! The service runs on a bare `TcpListener`, so this module does the
//! protocol work a framework would: parse a request head + body out of
//! a byte buffer and render responses. The parser is incremental
//! (returns [`HttpParse::Incomplete`] until a full request is buffered)
//! and hardened the way any network-facing parser must be: every access
//! is bounds-checked, lengths are capped, and **no input can panic it**
//! — a property the codec proptests pin.

use std::fmt;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body. Evidence batches are the biggest
/// payloads; a full Lamport chain is ~100 KiB hex-encoded, so 16 MiB
/// leaves ample headroom while bounding hostile `Content-Length`s.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target path (`/rpc`, `/metrics`, …), as sent.
    pub path: String,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of one parse attempt over a (possibly partial) buffer.
#[derive(Debug)]
pub enum HttpParse {
    /// A complete request and the number of bytes it consumed.
    Complete(Box<HttpRequest>, usize),
    /// The buffer holds a valid prefix; read more bytes and retry.
    Incomplete,
    /// The buffer can never become a valid request.
    Invalid(&'static str),
}

/// Parse one request from the front of `buf`. Never panics, for any
/// input whatsoever.
pub fn parse_request(buf: &[u8]) -> HttpParse {
    // Locate the end of the head: CRLFCRLF.
    let head_end = match find_head_end_from(buf, 0) {
        Some(e) => e,
        None if buf.len() > MAX_HEAD_BYTES => return HttpParse::Invalid("head too large"),
        None => return HttpParse::Incomplete,
    };
    parse_request_with_head(buf, head_end)
}

/// [`parse_request`] with the CRLFCRLF boundary already located, so an
/// incremental caller ([`RequestBuffer`]) never re-scans for it.
fn parse_request_with_head(buf: &[u8], head_end: usize) -> HttpParse {
    if head_end > MAX_HEAD_BYTES {
        return HttpParse::Invalid("head too large");
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return HttpParse::Invalid("head is not UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && parts.next().is_none() => (m, p, v),
        _ => return HttpParse::Invalid("malformed request line"),
    };
    if !version.starts_with("HTTP/1.") {
        return HttpParse::Invalid("unsupported HTTP version");
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return HttpParse::Invalid("too many headers");
        }
        let Some((name, value)) = line.split_once(':') else {
            return HttpParse::Invalid("malformed header");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // More than one Content-Length is the classic request-smuggling
    // ambiguity: two parsers disagreeing on which copy governs desync
    // on where the next request starts. Reject outright — even equal
    // duplicates — rather than pick one.
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let first_length = lengths.next();
    if lengths.next().is_some() {
        return HttpParse::Invalid("conflicting content-length");
    }
    let content_length = match first_length.map(|(_, v)| v.parse::<usize>()) {
        None => 0,
        Some(Ok(n)) if n <= MAX_BODY_BYTES => n,
        Some(Ok(_)) => return HttpParse::Invalid("body too large"),
        Some(Err(_)) => return HttpParse::Invalid("bad content-length"),
    };
    let body_start = head_end + 4;
    let total = match body_start.checked_add(content_length) {
        Some(t) => t,
        None => return HttpParse::Invalid("bad content-length"),
    };
    if buf.len() < total {
        return HttpParse::Incomplete;
    }
    HttpParse::Complete(
        Box::new(HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: buf[body_start..total].to_vec(),
        }),
        total,
    )
}

/// Locate CRLFCRLF starting the scan at `from` (a resume offset from a
/// previous partial scan; callers back it off by 3 so a delimiter
/// straddling the old buffer end is still found).
fn find_head_end_from(buf: &[u8], from: usize) -> Option<usize> {
    let from = from.min(buf.len());
    buf[from..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| from + p)
}

/// Incremental request framing over one connection's byte stream.
///
/// Wraps the stateless [`parse_request`] with the two pieces of state a
/// keep-alive loop needs to stay linear-time:
///
/// * a **scan resume offset** — the CRLFCRLF search never revisits
///   bytes it has already cleared, so feeding a 16 MiB body in 4 KiB
///   reads costs one pass, not ~4096 full-buffer passes;
/// * a **cached head boundary** — once the head is located, waiting
///   for the body re-parses nothing.
///
/// Consumed bytes are drained on every completed request, which is
/// what makes pipelining work: whatever the client sent beyond the
/// first request simply stays buffered for the next call.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
    /// CRLFCRLF scan resumes here (bytes before it hold no delimiter).
    scanned: usize,
    /// Head boundary of the in-progress request, once found.
    head_end: Option<usize>,
    /// Total bytes the delimiter scan has visited — observable so
    /// tests can assert the scan is single-pass (≈ bytes fed, never
    /// quadratic).
    bytes_scanned: u64,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> RequestBuffer {
        RequestBuffer::default()
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (a partial request, or pipelined
    /// follow-ups not yet parsed).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total bytes the CRLFCRLF scan has visited since construction.
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned
    }

    /// Try to parse the next request off the front of the buffer. On
    /// `Complete` the consumed bytes are drained and the scan state
    /// resets for the request behind them.
    pub fn next_request(&mut self) -> HttpParse {
        let head_end = match self.head_end {
            Some(e) => e,
            None => {
                // Resume the delimiter scan where the last one left
                // off, backing off 3 bytes in case CRLFCRLF straddles
                // the previous buffer end.
                let from = self.scanned.saturating_sub(3).min(self.buf.len());
                match find_head_end_from(&self.buf, from) {
                    Some(e) => {
                        // The scan stopped at the delimiter: charge
                        // only the bytes it actually visited.
                        self.bytes_scanned += (e + 4 - from) as u64;
                        self.head_end = Some(e);
                        e
                    }
                    None => {
                        self.bytes_scanned += (self.buf.len() - from) as u64;
                        self.scanned = self.buf.len();
                        return if self.buf.len() > MAX_HEAD_BYTES {
                            HttpParse::Invalid("head too large")
                        } else {
                            HttpParse::Incomplete
                        };
                    }
                }
            }
        };
        match parse_request_with_head(&self.buf, head_end) {
            HttpParse::Complete(req, used) => {
                self.buf.drain(..used);
                self.scanned = 0;
                self.head_end = None;
                HttpParse::Complete(req, used)
            }
            other => other,
        }
    }
}

/// Whether a request asks for the connection to be closed after the
/// response: an explicit `Connection: close`, or an HTTP/1.0-style
/// absence of keep-alive is approximated by honoring only the explicit
/// header (the service always speaks 1.1).
pub fn wants_close(req: &HttpRequest) -> bool {
    req.header("connection")
        .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
}

/// An HTTP response ready to serialize.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Serialize to wire bytes with `Connection: close` framing (the
    /// one-shot paths and tests that want the peer hung up after one
    /// exchange).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_conn(true)
    }

    /// Serialize to wire bytes, announcing whether the server will
    /// close the connection after this response (`Connection: close`)
    /// or hold it open for the next request
    /// (`Connection: keep-alive`). Framing is always
    /// `Content-Length`-delimited, so keep-alive clients know exactly
    /// where the body ends.
    pub fn to_bytes_conn(&self, close: bool) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        };
        let connection = if close { "close" } else { "keep-alive" };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// One parsed HTTP response, as seen by the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl ParsedResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server announced it will close the connection.
    pub fn closes_connection(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
    }
}

/// Outcome of one response-parse attempt over a (possibly partial)
/// reply buffer.
#[derive(Debug)]
pub enum ResponseParse {
    /// A complete response and the number of bytes it consumed.
    Complete(Box<ParsedResponse>, usize),
    /// A valid prefix; read more bytes and retry.
    Incomplete,
    /// The buffer can never become a valid response.
    Invalid(&'static str),
}

/// Parse one response from the front of `buf`, `Content-Length`-aware:
/// the client stops reading exactly at the body end instead of waiting
/// for EOF, which is what makes connection reuse possible. Never
/// panics; same caps and duplicate-`Content-Length` rejection as the
/// request parser.
pub fn parse_response_bytes(buf: &[u8]) -> ResponseParse {
    let head_end = match find_head_end_from(buf, 0) {
        Some(e) => e,
        None if buf.len() > MAX_HEAD_BYTES => return ResponseParse::Invalid("head too large"),
        None => return ResponseParse::Incomplete,
    };
    if head_end > MAX_HEAD_BYTES {
        return ResponseParse::Invalid("head too large");
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return ResponseParse::Invalid("head is not UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => match code.parse::<u16>() {
            Ok(c) => c,
            Err(_) => return ResponseParse::Invalid("malformed status code"),
        },
        _ => return ResponseParse::Invalid("malformed status line"),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return ResponseParse::Invalid("too many headers");
        }
        let Some((name, value)) = line.split_once(':') else {
            return ResponseParse::Invalid("malformed header");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let first_length = lengths.next();
    if lengths.next().is_some() {
        return ResponseParse::Invalid("conflicting content-length");
    }
    let content_length = match first_length.map(|(_, v)| v.parse::<usize>()) {
        None => 0,
        Some(Ok(n)) if n <= MAX_BODY_BYTES => n,
        Some(Ok(_)) => return ResponseParse::Invalid("body too large"),
        Some(Err(_)) => return ResponseParse::Invalid("bad content-length"),
    };
    let body_start = head_end + 4;
    let total = match body_start.checked_add(content_length) {
        Some(t) => t,
        None => return ResponseParse::Invalid("bad content-length"),
    };
    if buf.len() < total {
        return ResponseParse::Incomplete;
    }
    ResponseParse::Complete(
        Box::new(ParsedResponse {
            status,
            headers,
            body: buf[body_start..total].to_vec(),
        }),
        total,
    )
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}B body)",
            self.method,
            self.path,
            self.body.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let wire = b"POST /rpc HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let HttpParse::Complete(req, used) = parse_request(wire) else {
            panic!("expected complete parse");
        };
        assert_eq!(used, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rpc");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let wire = b"POST /rpc HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel";
        assert!(matches!(parse_request(wire), HttpParse::Incomplete));
        assert!(matches!(parse_request(b"GET /"), HttpParse::Incomplete));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            parse_request(b"NOT A REQUEST\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"GET / SPDY/3\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Conflicting duplicates: the smuggling classic.
        assert!(matches!(
            parse_request(
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!"
            ),
            HttpParse::Invalid("conflicting content-length")
        ));
        // Equal duplicates are rejected too — no guessing which copy a
        // downstream parser would honor.
        assert!(matches!(
            parse_request(
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"
            ),
            HttpParse::Invalid("conflicting content-length")
        ));
    }

    #[test]
    fn request_buffer_parses_across_arbitrary_splits() {
        let wire =
            b"POST /rpc HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /health HTTP/1.1\r\n\r\n";
        for split in 0..wire.len() {
            let mut rb = RequestBuffer::new();
            rb.extend(&wire[..split]);
            let mut got = Vec::new();
            loop {
                match rb.next_request() {
                    HttpParse::Complete(req, _) => got.push(req),
                    HttpParse::Incomplete => break,
                    HttpParse::Invalid(r) => panic!("invalid at split {split}: {r}"),
                }
            }
            rb.extend(&wire[split..]);
            loop {
                match rb.next_request() {
                    HttpParse::Complete(req, _) => got.push(req),
                    HttpParse::Incomplete => break,
                    HttpParse::Invalid(r) => panic!("invalid at split {split}: {r}"),
                }
            }
            assert_eq!(got.len(), 2, "split {split}");
            assert_eq!(got[0].path, "/rpc");
            assert_eq!(got[0].body, b"hello");
            assert_eq!(got[1].path, "/health");
            assert!(rb.is_empty(), "split {split}: all bytes consumed");
        }
    }

    #[test]
    fn request_buffer_scan_is_single_pass() {
        // Feed a large body in 4 KiB chunks, retrying the parse after
        // every read the way the serve loop does. The CRLFCRLF scan
        // must visit each byte O(1) times: the old from-zero rescan
        // visited ~n²/chunk bytes (≈ 512M for 2 MiB), the resume
        // offset keeps it ≈ n.
        let body = vec![0x61u8; 2 * 1024 * 1024];
        let mut wire = format!(
            "POST /rpc HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(&body);
        let mut rb = RequestBuffer::new();
        let mut done = None;
        for chunk in wire.chunks(4096) {
            rb.extend(chunk);
            match rb.next_request() {
                HttpParse::Complete(req, used) => {
                    done = Some((req, used));
                    break;
                }
                HttpParse::Incomplete => {}
                HttpParse::Invalid(r) => panic!("invalid: {r}"),
            }
        }
        let (req, used) = done.expect("request completed");
        assert_eq!(req.body.len(), body.len());
        assert_eq!(used, wire.len());
        assert!(
            rb.bytes_scanned() <= 2 * wire.len() as u64,
            "scan visited {} bytes for a {}-byte request — quadratic rescan is back",
            rb.bytes_scanned(),
            wire.len()
        );
    }

    #[test]
    fn connection_close_negotiation_is_detected() {
        let parse = |wire: &[u8]| {
            let HttpParse::Complete(req, _) = parse_request(wire) else {
                panic!("expected complete parse");
            };
            req
        };
        assert!(wants_close(&parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )));
        assert!(wants_close(&parse(
            b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n"
        )));
        assert!(!wants_close(&parse(
            b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
        )));
        assert!(!wants_close(&parse(b"GET / HTTP/1.1\r\n\r\n")));
    }

    #[test]
    fn response_parser_round_trips_both_framings() {
        for close in [true, false] {
            let wire = HttpResponse::json(200, "{\"ok\": true}".to_string()).to_bytes_conn(close);
            // Trailing pipelined bytes must not be consumed.
            let mut padded = wire.clone();
            padded.extend_from_slice(b"HTTP/1.1 200 OK\r\n");
            let ResponseParse::Complete(resp, used) = parse_response_bytes(&padded) else {
                panic!("expected complete response parse");
            };
            assert_eq!(used, wire.len());
            assert_eq!(resp.status, 200);
            assert_eq!(resp.closes_connection(), close);
            assert_eq!(resp.body, b"{\"ok\": true}");
        }
        assert!(matches!(
            parse_response_bytes(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab"),
            ResponseParse::Incomplete
        ));
        assert!(matches!(
            parse_response_bytes(b"GARBAGE\r\n\r\n"),
            ResponseParse::Invalid(_)
        ));
        assert!(matches!(
            parse_response_bytes(
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nabc"
            ),
            ResponseParse::Invalid("conflicting content-length")
        ));
    }

    #[test]
    fn response_round_trips_framing() {
        let r = HttpResponse::json(200, "{\"ok\": true}".to_string());
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.ends_with("{\"ok\": true}"));
    }
}
