//! Minimal HTTP/1.1 server-side codec on untrusted bytes.
//!
//! The service runs on a bare `TcpListener`, so this module does the
//! protocol work a framework would: parse a request head + body out of
//! a byte buffer and render responses. The parser is incremental
//! (returns [`HttpParse::Incomplete`] until a full request is buffered)
//! and hardened the way any network-facing parser must be: every access
//! is bounds-checked, lengths are capped, and **no input can panic it**
//! — a property the codec proptests pin.

use std::fmt;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body. Evidence batches are the biggest
/// payloads; a full Lamport chain is ~100 KiB hex-encoded, so 16 MiB
/// leaves ample headroom while bounding hostile `Content-Length`s.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target path (`/rpc`, `/metrics`, …), as sent.
    pub path: String,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of one parse attempt over a (possibly partial) buffer.
#[derive(Debug)]
pub enum HttpParse {
    /// A complete request and the number of bytes it consumed.
    Complete(Box<HttpRequest>, usize),
    /// The buffer holds a valid prefix; read more bytes and retry.
    Incomplete,
    /// The buffer can never become a valid request.
    Invalid(&'static str),
}

/// Parse one request from the front of `buf`. Never panics, for any
/// input whatsoever.
pub fn parse_request(buf: &[u8]) -> HttpParse {
    // Locate the end of the head: CRLFCRLF.
    let head_end = match find_head_end(buf) {
        Some(e) => e,
        None if buf.len() > MAX_HEAD_BYTES => return HttpParse::Invalid("head too large"),
        None => return HttpParse::Incomplete,
    };
    if head_end > MAX_HEAD_BYTES {
        return HttpParse::Invalid("head too large");
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return HttpParse::Invalid("head is not UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && parts.next().is_none() => (m, p, v),
        _ => return HttpParse::Invalid("malformed request line"),
    };
    if !version.starts_with("HTTP/1.") {
        return HttpParse::Invalid("unsupported HTTP version");
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return HttpParse::Invalid("too many headers");
        }
        let Some((name, value)) = line.split_once(':') else {
            return HttpParse::Invalid("malformed header");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        None => 0,
        Some(Ok(n)) if n <= MAX_BODY_BYTES => n,
        Some(Ok(_)) => return HttpParse::Invalid("body too large"),
        Some(Err(_)) => return HttpParse::Invalid("bad content-length"),
    };
    let body_start = head_end + 4;
    let total = match body_start.checked_add(content_length) {
        Some(t) => t,
        None => return HttpParse::Invalid("bad content-length"),
    };
    if buf.len() < total {
        return HttpParse::Incomplete;
    }
    HttpParse::Complete(
        Box::new(HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: buf[body_start..total].to_vec(),
        }),
        total,
    )
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to serialize.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Serialize to wire bytes (`Connection: close` framing — the
    /// service speaks one request per connection).
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}B body)",
            self.method,
            self.path,
            self.body.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let wire = b"POST /rpc HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let HttpParse::Complete(req, used) = parse_request(wire) else {
            panic!("expected complete parse");
        };
        assert_eq!(used, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rpc");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let wire = b"POST /rpc HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel";
        assert!(matches!(parse_request(wire), HttpParse::Incomplete));
        assert!(matches!(parse_request(b"GET /"), HttpParse::Incomplete));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            parse_request(b"NOT A REQUEST\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"GET / SPDY/3\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
    }

    #[test]
    fn response_round_trips_framing() {
        let r = HttpResponse::json(200, "{\"ok\": true}".to_string());
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.ends_with("{\"ok\": true}"));
    }
}
