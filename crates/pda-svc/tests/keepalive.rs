//! The persistent connection plane, end to end over real TCP:
//! keep-alive sessions, pipelining through the live JSON-RPC service,
//! client-side connection pooling with server-side reuse accounting,
//! large-body ingest at linear cost, and the duplicate-`Content-Length`
//! rejection on both the keep-alive and close paths.

use pda_svc::http::{parse_response_bytes, ParsedResponse, ResponseParse};
use pda_svc::{serve, serve_with, AppraisalService, ServeOptions, SvcClient, SvcConfig};
use pda_telemetry::json::Json;
use pda_telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn live_service() -> (Arc<AppraisalService>, pda_svc::ServerHandle) {
    let svc = Arc::new(AppraisalService::new(
        SvcConfig::default(),
        Telemetry::collecting(),
    ));
    let server = serve("127.0.0.1:0", 2, Arc::clone(&svc)).expect("bind loopback");
    (svc, server)
}

/// Read one `Content-Length`-framed response, carrying leftovers.
fn read_response(conn: &mut TcpStream, buf: &mut Vec<u8>) -> ParsedResponse {
    let mut chunk = [0u8; 4096];
    loop {
        match parse_response_bytes(buf) {
            ResponseParse::Complete(resp, used) => {
                buf.drain(..used);
                return *resp;
            }
            ResponseParse::Incomplete => {
                let n = conn.read(&mut chunk).expect("read response");
                assert!(n > 0, "server closed mid-response");
                buf.extend_from_slice(&chunk[..n]);
            }
            ResponseParse::Invalid(r) => panic!("invalid response: {r}"),
        }
    }
}

fn rpc_wire(id: u64, method: &str) -> Vec<u8> {
    let body = format!("{{\"jsonrpc\": \"2.0\", \"id\": {id}, \"method\": \"{method}\"}}");
    format!(
        "POST /rpc HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// M pipelined JSON-RPC requests written in one burst come back as M
/// responses in request order (ids echo back ascending).
#[test]
fn pipelined_rpcs_get_ordered_responses() {
    let (_svc, mut server) = live_service();
    let mut conn = TcpStream::connect(server.addr).unwrap();
    const M: u64 = 12;
    let mut burst = Vec::new();
    for id in 1..=M {
        burst.extend_from_slice(&rpc_wire(id, "health"));
    }
    conn.write_all(&burst).unwrap();
    let mut buf = Vec::new();
    for id in 1..=M {
        let resp = read_response(&mut conn, &mut buf);
        assert_eq!(resp.status, 200);
        let v = pda_telemetry::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(id), "order held");
    }
    assert!(buf.is_empty(), "exactly M responses");
    server.stop();
}

/// A multi-megabyte body ingests in linear time through the real
/// socket path. Under the old from-zero rescan a 4 MiB body cost
/// ~1000 full-buffer scans (tens of seconds in a debug build); the
/// resume-offset scan finishes in well under the bound.
#[test]
fn large_body_ingest_is_linear() {
    let (_svc, mut server) = live_service();
    let mut conn = TcpStream::connect(server.addr).unwrap();
    // A syntactically valid request bearing a large non-JSON body: the
    // HTTP layer must frame all of it (that's the hot loop under
    // test); the RPC layer then rejects it cheaply.
    let body = vec![b'x'; 4 * 1024 * 1024];
    let mut wire = format!(
        "POST /rpc HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(&body);
    let start = Instant::now();
    conn.write_all(&wire).unwrap();
    let mut buf = Vec::new();
    let resp = read_response(&mut conn, &mut buf);
    let elapsed = start.elapsed();
    assert_eq!(resp.status, 400, "body is not JSON-RPC");
    assert!(
        elapsed < Duration::from_secs(10),
        "4 MiB ingest took {elapsed:?} — quadratic rescanning is back"
    );
    server.stop();
}

/// The pooled client reuses its connection across calls, and the
/// service's reuse counters see it; a close-mode client on the same
/// server opens one connection per call and trips no reuse counter.
#[test]
fn client_pool_reuses_connections_and_counters_agree() {
    let (svc, mut server) = live_service();

    let keep = SvcClient::new(server.addr);
    for _ in 0..5 {
        keep.health().expect("health over keep-alive");
    }
    assert!(
        keep.reused_connections() >= 4,
        "pooled client reused its connection: {}",
        keep.reused_connections()
    );
    drop(keep); // pool drops → sockets close → server accounts them

    let closing = SvcClient::new(server.addr).with_keep_alive(false);
    for _ in 0..3 {
        closing.health().expect("health over close-mode");
    }
    assert_eq!(closing.reused_connections(), 0, "close mode never reuses");

    server.stop(); // joins workers: connection accounting is final
    let reg = svc.telemetry().registry().expect("collecting telemetry");
    let reused = reg.counter("svc.http.reused_connections").get();
    let conns = reg.counter("svc.http.connections").get();
    let reqs = reg.counter("svc.http.requests").get();
    assert!(reused >= 1, "one connection served >=2 RPCs (got {reused})");
    assert!(
        conns < reqs,
        "fewer connections than requests proves reuse ({conns} conns, {reqs} reqs)"
    );
    assert!(reqs >= 8, "all 8 RPCs accounted ({reqs})");
}

/// A request bearing two `Content-Length` headers — the
/// request-smuggling desync primitive — is rejected with a 400 on
/// both the keep-alive and the close-mode server paths, and the
/// connection is torn down rather than left desynced.
#[test]
fn duplicate_content_length_gets_400_on_both_paths() {
    for closing in [false, true] {
        let svc = Arc::new(AppraisalService::new(
            SvcConfig::default(),
            Telemetry::collecting(),
        ));
        let opts = if closing {
            ServeOptions::closing()
        } else {
            ServeOptions::default()
        };
        let mut server = serve_with("127.0.0.1:0", 1, Arc::clone(&svc), opts).unwrap();
        let mut conn = TcpStream::connect(server.addr).unwrap();
        // Unequal duplicates; a second (smuggled) request hides in the
        // gap between the two lengths.
        conn.write_all(
            b"POST /rpc HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\nContent-Length: 64\r\n\r\nhelloGET /smuggled HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap(); // closed after the 400
        assert!(
            reply.starts_with("HTTP/1.1 400 "),
            "mode closing={closing}: {reply}"
        );
        assert!(
            reply.contains("conflicting content-length"),
            "mode closing={closing}: {reply}"
        );
        assert_eq!(
            reply.matches("HTTP/1.1").count(),
            1,
            "smuggled request was not answered: {reply}"
        );
        server.stop();
    }
}

/// A client that negotiates `Connection: close` per call still works
/// against the keep-alive server (the compatibility path CI keeps
/// green).
#[test]
fn close_mode_client_round_trips_rpc_and_metrics() {
    let (_svc, mut server) = live_service();
    let client = SvcClient::new(server.addr).with_keep_alive(false);
    let health = client.health().expect("health");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    let prom = client.metrics_text().expect("GET /metrics");
    assert!(prom.contains("# TYPE"), "prometheus text came back");
    server.stop();
}
