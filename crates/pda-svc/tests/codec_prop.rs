//! Property tests for the service's network-facing codecs.
//!
//! Two guarantees the service makes to the open network:
//! 1. **No panic, ever**: arbitrary bytes thrown at the HTTP request
//!    parser and the JSON-RPC parser produce a verdict, never a crash.
//! 2. **Canonical round trip**: a well-formed JSON-RPC request
//!    re-encodes byte-identically after parsing.

use pda_svc::http::{parse_request, parse_response_bytes, HttpParse, RequestBuffer};
use pda_svc::rpc::{from_hex, to_hex, RpcRequest};
use pda_telemetry::json::Json;
use proptest::prelude::*;

/// Frame a well-formed request with the given body.
fn frame_request(path: &str, body: &[u8]) -> Vec<u8> {
    let mut wire = format!(
        "POST /{path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// A strategy over JSON-RPC method parameter values (flat objects of
/// the shapes the service's methods actually take).
fn params_strategy() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<u64>().prop_map(|n| Json::Obj(vec![("nonce".to_string(), Json::UInt(n))])),
        "[a-z0-9]{0,64}".prop_map(|s| Json::Obj(vec![("records".to_string(), Json::Str(s))])),
        ("[a-z/0-9]{0,16}", any::<u64>()).prop_map(|(s, l)| Json::Obj(vec![
            ("subject".to_string(), Json::Str(s)),
            ("limit".to_string(), Json::UInt(l)),
        ])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The HTTP parser never panics on arbitrary input bytes.
    #[test]
    fn http_parser_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = parse_request(&buf);
    }

    /// Neither does it panic when the input *looks* like HTTP.
    #[test]
    fn http_parser_never_panics_on_http_like_input(
        method in "[A-Z]{1,8}",
        path in "[ -~]{0,64}",
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut wire = format!("{method} /{path} HTTP/1.1\r\n").into_bytes();
        wire.extend_from_slice(&garbage);
        let _ = parse_request(&wire);
    }

    /// A correctly framed request parses completely and faithfully.
    #[test]
    fn http_well_formed_requests_parse(body in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut wire = format!(
            "POST /rpc HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        ).into_bytes();
        wire.extend_from_slice(&body);
        let HttpParse::Complete(req, used) = parse_request(&wire) else {
            return Err(TestCaseError::fail("expected complete parse"));
        };
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(req.body, body);
    }

    /// Keep-alive framing: N well-formed requests concatenated into
    /// one stream and fed across an arbitrary split boundary parse to
    /// exactly N requests, whose consumed-byte counts tile the buffer
    /// with no gap, overlap, or leftover — the invariant pipelining
    /// rests on.
    #[test]
    fn pipelined_requests_tile_the_buffer(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..8),
        split_seed in any::<usize>(),
    ) {
        let wires: Vec<Vec<u8>> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| frame_request(&format!("r{i}"), b))
            .collect();
        let stream: Vec<u8> = wires.concat();
        let split = split_seed % (stream.len() + 1);

        let mut rb = RequestBuffer::new();
        let mut parsed = Vec::new();
        let mut consumed = 0usize;
        for part in [&stream[..split], &stream[split..]] {
            rb.extend(part);
            loop {
                match rb.next_request() {
                    HttpParse::Complete(req, used) => {
                        // Offsets tile: this request's bytes are exactly
                        // the next `used` bytes of the original stream.
                        let expect = &wires[parsed.len()];
                        prop_assert_eq!(used, expect.len(), "consumed-byte count");
                        prop_assert_eq!(
                            &stream[consumed..consumed + used],
                            expect.as_slice()
                        );
                        consumed += used;
                        parsed.push(req);
                    }
                    HttpParse::Incomplete => break,
                    HttpParse::Invalid(r) =>
                        return Err(TestCaseError::fail(format!("invalid: {r}"))),
                }
            }
        }
        prop_assert_eq!(parsed.len(), bodies.len(), "exactly N requests");
        prop_assert_eq!(consumed, stream.len(), "offsets tile the whole buffer");
        prop_assert!(rb.is_empty());
        for (req, body) in parsed.iter().zip(&bodies) {
            prop_assert_eq!(&req.body, body);
        }
        // And the scan never went quadratic: each byte is visited O(1)
        // times (the +3 backoff per read bounds the constant).
        prop_assert!(rb.bytes_scanned() <= 3 * stream.len() as u64 + 8);
    }

    /// The incremental buffer never panics on arbitrary bytes fed in
    /// arbitrary chunkings.
    #[test]
    fn request_buffer_never_panics(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 0..8),
    ) {
        let mut rb = RequestBuffer::new();
        for c in &chunks {
            rb.extend(c);
            // Drain until the buffer needs more bytes or goes invalid.
            while let HttpParse::Complete(_, _) = rb.next_request() {}
        }
    }

    /// The client-side response parser never panics on arbitrary
    /// bytes.
    #[test]
    fn response_parser_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = parse_response_bytes(&buf);
    }

    /// The JSON-RPC parser never panics on arbitrary text.
    #[test]
    fn rpc_parser_never_panics(text in "[ -~\\r\\n\\t]{0,512}") {
        let _ = RpcRequest::parse(&text);
    }

    /// Well-formed requests round-trip byte-identically:
    /// `encode(parse(encode(r))) == encode(r)`.
    #[test]
    fn rpc_round_trip_is_byte_identical(
        id in any::<u64>(),
        method in "[a-z-]{1,24}",
        params in params_strategy(),
        trace_nonce in any::<u64>(),
    ) {
        let mut req = RpcRequest::new(id, &method, params);
        // Half the cases carry a traceparent, half don't.
        if trace_nonce % 2 == 1 {
            req = req.with_traceparent(pda_telemetry::TraceCtx::for_nonce(trace_nonce).traceparent());
        }
        let wire = req.encode();
        let back = RpcRequest::parse(&wire)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.encode(), wire);
    }

    /// The traceparent parser never panics on arbitrary field
    /// contents — including multi-byte UTF-8 straddling the 32-byte
    /// trace field's split point — whether fed raw or through a full
    /// JSON-RPC round trip, the way `dispatch` receives it from the
    /// network.
    #[test]
    fn traceparent_parser_never_panics(
        raw in "[0-9a-f é☃-]{0,64}",
        head in "[0-9a-f]{0,20}",
        mid in "[0-9a-fé☃]",
        span in "[0-9a-f]{16}",
    ) {
        let _ = pda_telemetry::TraceCtx::parse_traceparent(&raw);
        // A correctly framed header whose trace field may contain a
        // multi-byte char at any byte offset, padded to 32 bytes so
        // the length check passes and the split point is exercised.
        let mut field = head;
        field.push_str(&mid);
        let used = field.len();
        if used <= 32 {
            field.push_str(&"0".repeat(32 - used));
        }
        let framed = format!("00-{field}-{span}-01");
        let _ = pda_telemetry::TraceCtx::parse_traceparent(&framed);
        // And via the RPC codec, as the service's dispatch path does.
        let req = RpcRequest::new(1, "appraise", Json::Null).with_traceparent(framed);
        let back = RpcRequest::parse(&req.encode())
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        if let Some(tp) = back.traceparent.as_deref() {
            let _ = pda_telemetry::TraceCtx::parse_traceparent(tp);
        }
    }

    /// Hex codec: encode∘decode is the identity, and decode never
    /// panics on arbitrary strings.
    #[test]
    fn hex_round_trip_and_no_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256),
                                   junk in "[ -~]{0,64}") {
        prop_assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes));
        let _ = from_hex(&junk);
    }
}
