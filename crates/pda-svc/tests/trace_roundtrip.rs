//! End-to-end trace propagation: the trace id stamped at switch
//! measurement time (derived from the nonce) must be recoverable at
//! every later stage — the JSON-RPC response echo, the quorum's audit
//! record, and the flight recorder's per-trace dump — for accepted
//! *and* rejected verdicts, under E18-style churn.

use pda_crypto::nonce::Nonce;
use pda_netsim::EvidenceMode;
use pda_svc::churn::{run_churn_with, ChurnConfig};
use pda_svc::client::SvcClient;
use pda_svc::fleet::standard_fleet;
use pda_svc::runtime::serve;
use pda_svc::service::{AppraisalService, SvcConfig};
use pda_telemetry::json::Json;
use pda_telemetry::{
    render_trace_trees, AuditEvent, FlightRecorder, SloPolicy, Telemetry, TraceCtx, TraceId,
};
use std::sync::Arc;

/// A service whose telemetry feeds a flight recorder, with the
/// verdict-latency SLO active.
fn traced_service() -> (Arc<AppraisalService>, Arc<FlightRecorder>, Telemetry) {
    let recorder = Arc::new(FlightRecorder::new(256, 128));
    let tel = Telemetry::new(recorder.clone());
    let svc = Arc::new(
        AppraisalService::new(SvcConfig::default(), tel.clone())
            .with_flight_recorder(recorder.clone())
            // Generous target: only genuine stalls breach it in tests.
            .with_slo(SloPolicy::new("svc.verdict.ns", 60_000_000_000, 0.99)),
    );
    (svc, recorder, tel)
}

#[test]
fn trace_id_survives_submit_appraise_audit_and_echo() {
    let (svc, _recorder, _tel) = traced_service();
    let mut server = serve("127.0.0.1:0", 2, Arc::clone(&svc)).unwrap();
    let client = SvcClient::new(server.addr);

    let nonce = 7u64;
    let mut fleet = standard_fleet(3);
    let appraiser = fleet.appraiser;
    fleet.send_attested(Nonce(nonce), EvidenceMode::OutOfBand { appraiser }, b"pkt");
    let records = fleet.sim.evidence_at(appraiser).to_vec();
    assert_eq!(records.len(), 3, "every hop reported");

    let expect_tp = TraceCtx::for_nonce(nonce).traceparent();
    let (sub, sub_echo) = client.submit_evidence_traced(&records).unwrap();
    assert_eq!(sub.get("accepted").and_then(Json::as_u64), Some(3));
    assert_eq!(
        sub_echo.as_deref(),
        Some(expect_tp.as_str()),
        "submit echoes the caller's traceparent"
    );

    let (verdict, app_echo) = client.appraise_traced(nonce).unwrap();
    assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        app_echo.as_deref(),
        Some(expect_tp.as_str()),
        "appraise echoes the caller's traceparent"
    );

    // The quorum's audit record carries the same trace id.
    let log = client.query_audit_log(Some("svc/quorum"), None).unwrap();
    let recs = log.get("records").and_then(Json::as_arr).unwrap();
    let hex = TraceId::for_nonce(nonce).to_hex();
    assert!(
        recs.iter()
            .any(|r| r.get("trace").and_then(Json::as_str) == Some(hex.as_str())),
        "quorum audit record carries the measurement-time trace id"
    );
    server.stop();
}

#[test]
fn churn_traces_span_switch_to_quorum_for_accepted_and_rejected() {
    let (svc, recorder, tel) = traced_service();
    let mut server = serve("127.0.0.1:0", 2, Arc::clone(&svc)).unwrap();
    let client = SvcClient::new(server.addr);
    let config = ChurnConfig {
        epochs: 4,
        packets_per_epoch: 3,
        rogue_every: 2,
        link_loss: 0.0,
        ..ChurnConfig::default()
    };
    let report = run_churn_with(&client, &config, &tel).expect("churn run completes");
    server.stop();

    assert!(
        report.rejected > 0,
        "rogue epochs produce rejections: {report:?}"
    );
    assert!(
        report.accepted > 0,
        "clean epochs produce acceptances: {report:?}"
    );
    assert!(
        recorder.triggers() > 0,
        "rejected verdicts triggered the flight recorder"
    );

    // Recover one accepted and one rejected trace id from the
    // appraiser-side audit log.
    let log = svc.telemetry().audit_log().unwrap();
    let mut accepted = None;
    let mut rejected = None;
    for r in log.records() {
        if let AuditEvent::Appraisal {
            subject,
            ok,
            trace: Some(t),
            ..
        } = &r.event
        {
            if subject == "svc/quorum" {
                let id = TraceId::from_hex(t).expect("audit trace ids are 16-char hex");
                if *ok {
                    accepted.get_or_insert(id);
                } else {
                    rejected.get_or_insert(id);
                }
            }
        }
    }
    let cases = [
        ("accepted", accepted.expect("a clean chain was accepted")),
        ("rejected", rejected.expect("a rogue chain was rejected")),
    ];

    // Each trace's flight dump renders to a tree containing the whole
    // lifecycle — switch measurement, control channel, every
    // federation member, quorum — in causal order.
    for (label, trace) in cases {
        let dump = recorder.trigger("test-dump", trace);
        let tree = render_trace_trees(&dump, Some(trace)).expect("dump renders");
        for needle in [
            "pera.attest",
            "channel.",
            "svc.appraiser.a1",
            "svc.appraiser.a2",
            "svc.appraiser.a3",
            "svc.quorum",
        ] {
            assert!(
                tree.contains(needle),
                "{label} trace tree missing {needle}:\n{tree}"
            );
        }
        let pos = |n: &str| tree.find(n).unwrap();
        assert!(
            pos("pera.attest") < pos("channel."),
            "{label}: measurement precedes the channel:\n{tree}"
        );
        assert!(
            pos("channel.") < pos("svc.appraiser.a1"),
            "{label}: channel precedes appraisal:\n{tree}"
        );
        assert!(
            pos("svc.appraiser.a1") < pos("svc.quorum"),
            "{label}: members vote before the quorum combines:\n{tree}"
        );
    }
}
