//! Property-based tests for the crypto substrate.

use pda_crypto::digest::Digest;
use pda_crypto::hmac::{ct_eq, hmac_sha256};
use pda_crypto::lamport::{lamport_verify, LamportSecretKey};
use pda_crypto::merkle::{merkle_proof_verify, merkle_verify, MerkleSigner, MerkleTree};
use pda_crypto::nonce::{Nonce, ReplayWindow};
use pda_crypto::sha256::Sha256;
use pda_crypto::sig::{verify, SigScheme, Signer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental hashing over arbitrary chunkings equals one-shot.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                 cuts in proptest::collection::vec(0usize..2048, 0..8)) {
        let oneshot = Sha256::digest(&data);
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Distinct inputs (very likely) hash differently; equal inputs always equal.
    #[test]
    fn sha256_deterministic(a in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(Sha256::digest(&a), Sha256::digest(&a));
    }

    /// A single bit flip anywhere changes the digest.
    #[test]
    fn sha256_bit_flip_changes_digest(mut data in proptest::collection::vec(any::<u8>(), 1..256),
                                      idx in any::<usize>(), bit in 0u8..8) {
        let before = Sha256::digest(&data);
        let i = idx % data.len();
        data[i] ^= 1 << bit;
        prop_assert_ne!(Sha256::digest(&data), before);
    }

    /// HMAC tags differ across keys and across messages.
    #[test]
    fn hmac_key_and_msg_separation(k1 in proptest::collection::vec(any::<u8>(), 1..64),
                                   k2 in proptest::collection::vec(any::<u8>(), 1..64),
                                   msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let t1 = hmac_sha256(&k1, &msg);
        let t2 = hmac_sha256(&k2, &msg);
        if k1 != k2 {
            prop_assert_ne!(t1, t2);
        } else {
            prop_assert_eq!(t1, t2);
        }
        prop_assert!(ct_eq(&t1, &t1));
    }

    /// Digest chaining is injective with respect to order.
    #[test]
    fn digest_chain_order(a in proptest::collection::vec(any::<u8>(), 1..32),
                          b in proptest::collection::vec(any::<u8>(), 1..32)) {
        prop_assume!(a != b);
        let ab = Digest::ZERO.chain(&a).chain(&b);
        let ba = Digest::ZERO.chain(&b).chain(&a);
        prop_assert_ne!(ab, ba);
    }

    /// Merkle membership proofs verify for every leaf, and fail for
    /// every other leaf's data.
    #[test]
    fn merkle_proofs_sound(leaves in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..16), 1..24)) {
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(merkle_proof_verify(&root, leaf, &proof));
            // Wrong data under the same proof must fail.
            let mut wrong = leaf.clone();
            wrong.push(0xFF);
            prop_assert!(!merkle_proof_verify(&root, &wrong, &proof));
        }
    }

    /// Lamport: sign/verify round-trips; a flipped message bit fails.
    #[test]
    fn lamport_soundness(seed in any::<[u8; 32]>(), index in 0u64..16,
                         msg in proptest::collection::vec(any::<u8>(), 1..64),
                         flip in any::<usize>()) {
        let (sk, pk) = LamportSecretKey::derive(&seed, index);
        let sig = sk.sign(&msg);
        prop_assert!(lamport_verify(&pk, &msg, &sig));
        let mut tampered = msg.clone();
        let i = flip % tampered.len();
        tampered[i] ^= 1;
        prop_assert!(!lamport_verify(&pk, &tampered, &sig));
    }

    /// All three signer backends: verify succeeds for the right message
    /// and fails for any different message.
    #[test]
    fn signer_backends_sound(seed in any::<[u8; 32]>(),
                             msg in proptest::collection::vec(any::<u8>(), 1..64),
                             other in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(msg != other);
        for scheme in SigScheme::ALL {
            let mut signer = Signer::new(scheme, seed, 2);
            let vk = signer.verify_key(4);
            let sig = signer.sign(&msg).unwrap();
            prop_assert!(verify(&vk, &msg, &sig), "{scheme}");
            prop_assert!(!verify(&vk, &other, &sig), "{scheme}");
        }
    }

    /// Merkle-MSS: every signature up to capacity verifies; indexes are
    /// never reused.
    #[test]
    fn mss_no_reuse(seed in any::<[u8; 32]>()) {
        let mut signer = MerkleSigner::new(seed, 2);
        let root = signer.public_root();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            let msg = [i as u8; 8];
            let sig = signer.sign(&msg).unwrap();
            prop_assert!(merkle_verify(&root, &msg, &sig));
            prop_assert!(seen.insert(sig.index));
        }
        prop_assert!(signer.sign(b"over").is_err());
    }

    /// Replay windows never accept the same nonce twice within an epoch.
    #[test]
    fn replay_window_rejects_dups(nonces in proptest::collection::vec(any::<u64>(), 1..64)) {
        let mut w = ReplayWindow::new(1024);
        let mut seen = std::collections::HashSet::new();
        for n in nonces {
            let fresh = seen.insert(n);
            prop_assert_eq!(w.check_and_record(Nonce(n)), fresh);
        }
    }
}
