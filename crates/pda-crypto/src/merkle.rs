//! Merkle trees and a Merkle signature scheme (MSS) over Lamport leaves.
//!
//! Two exports:
//!
//! * [`MerkleTree`] — a general-purpose binary hash tree with membership
//!   proofs, reused by the evidence store for audit-trail commitments
//!   (UC4: "evidence as documentation").
//! * [`MerkleSigner`] / [`merkle_verify`] — a many-time signature scheme:
//!   the public key is the root of a tree of Lamport one-time public-key
//!   fingerprints; each signature carries the leaf index, the one-time
//!   public key, and the authentication path. This models a device
//!   identity key that signs many evidence bundles over its lifetime.

use crate::digest::Digest;
use crate::lamport::{lamport_verify, LamportPublicKey, LamportSecretKey, LamportSignature};
use crate::sha256::digest_many;

/// A binary Merkle hash tree over arbitrary leaf values.
///
/// Leaves are hashed with a `0x00` domain-separation prefix and interior
/// nodes with `0x01`, preventing leaf/node confusion attacks. Odd nodes
/// are promoted (not duplicated), so trees of any size are well defined.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = single root.
    levels: Vec<Vec<Digest>>,
}

/// A membership proof: sibling hashes from leaf to root plus the leaf index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling digest at each level, `None` when the node was promoted.
    pub siblings: Vec<Option<Digest>>,
}

fn leaf_hash(data: &[u8]) -> Digest {
    Digest::of_parts(&[&[0x00], data])
}

fn node_hash(l: &Digest, r: &Digest) -> Digest {
    Digest::of_parts(&[&[0x01], l.as_bytes(), r.as_bytes()])
}

/// Hash all leaves, eight per multi-lane pass when they share a (short)
/// length — the common case for this stack, whose trees commit 32-byte
/// fingerprints or evidence chain digests. Mixed or long leaves fall
/// back to the scalar path per chunk.
fn leaf_hashes<T: AsRef<[u8]>>(leaves: &[T]) -> Vec<Digest> {
    const L: usize = 8;
    let mut out = Vec::with_capacity(leaves.len());
    let mut chunks = leaves.chunks_exact(L);
    for chunk in &mut chunks {
        let n = chunk[0].as_ref().len();
        if n > 63 || chunk.iter().any(|l| l.as_ref().len() != n) {
            out.extend(chunk.iter().map(|l| leaf_hash(l.as_ref())));
            continue;
        }
        // Prefix byte + leaf fits one stack block per lane.
        let mut bufs = [[0u8; 64]; L];
        for (buf, leaf) in bufs.iter_mut().zip(chunk) {
            buf[1..1 + n].copy_from_slice(leaf.as_ref());
        }
        let lanes: [&[u8]; L] = std::array::from_fn(|l| &bufs[l][..1 + n]);
        out.extend(digest_many(lanes).map(Digest));
    }
    out.extend(chunks.remainder().iter().map(|l| leaf_hash(l.as_ref())));
    out
}

/// One level up: hash adjacent pairs eight at a time, promote a trailing
/// odd node.
fn next_level(prev: &[Digest]) -> Vec<Digest> {
    const L: usize = 8;
    let pairs = prev.len() / 2;
    let mut next = Vec::with_capacity(prev.len().div_ceil(2));
    let mut p = 0;
    while p + L <= pairs {
        let mut bufs = [[0u8; 65]; L];
        for (l, buf) in bufs.iter_mut().enumerate() {
            let i = (p + l) * 2;
            buf[0] = 0x01;
            buf[1..33].copy_from_slice(prev[i].as_bytes());
            buf[33..].copy_from_slice(prev[i + 1].as_bytes());
        }
        let lanes: [&[u8]; L] = std::array::from_fn(|l| bufs[l].as_slice());
        next.extend(digest_many(lanes).map(Digest));
        p += L;
    }
    for i in (p * 2..pairs * 2).step_by(2) {
        next.push(node_hash(&prev[i], &prev[i + 1]));
    }
    if prev.len() % 2 == 1 {
        next.push(*prev.last().unwrap()); // promote odd node
    }
    next
}

impl MerkleTree {
    /// Build a tree over `leaves` (raw leaf byte strings). Panics on empty
    /// input — an empty audit log has no root to commit to.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> MerkleTree {
        assert!(!leaves.is_empty(), "MerkleTree::build on empty leaf set");
        let mut levels = vec![leaf_hashes(leaves)];
        while levels.last().unwrap().len() > 1 {
            levels.push(next_level(levels.last().unwrap()));
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // build() rejects empty input; a tree always has leaves
    }

    /// Produce a membership proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = idx ^ 1;
            siblings.push(level.get(sib).copied());
            idx /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

/// Verify that `leaf_data` is the leaf at `proof.index` of the tree with
/// the given `root`.
pub fn merkle_proof_verify(root: &Digest, leaf_data: &[u8], proof: &MerkleProof) -> bool {
    let mut acc = leaf_hash(leaf_data);
    let mut idx = proof.index;
    for sib in &proof.siblings {
        acc = match sib {
            Some(s) if idx.is_multiple_of(2) => node_hash(&acc, s),
            Some(s) => node_hash(s, &acc),
            None => acc, // promoted
        };
        idx /= 2;
    }
    acc == *root
}

/// A many-time signer: `2^height` Lamport one-time keys committed under a
/// single Merkle root. Keys are derived lazily from a seed, so keygen cost
/// is one pass to compute fingerprints and memory stays O(tree).
pub struct MerkleSigner {
    seed: [u8; 32],
    tree: MerkleTree,
    next: usize,
    capacity: usize,
}

/// A many-time signature: one-time signature + key disclosure + path.
#[derive(Clone)]
pub struct MerkleSignature {
    /// Which one-time key was used.
    pub index: usize,
    /// The disclosed one-time public key (verifier checks its fingerprint
    /// against the Merkle path).
    pub ots_public: LamportPublicKey,
    /// The Lamport signature itself.
    pub ots_sig: LamportSignature,
    /// Membership proof of `ots_public`'s fingerprint under the root.
    pub proof: MerkleProof,
}

impl std::fmt::Debug for MerkleSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MerkleSignature(index={}, {}B)",
            self.index,
            self.wire_size()
        )
    }
}

impl MerkleSignature {
    /// Approximate wire size in bytes (used by overhead experiments).
    pub fn wire_size(&self) -> usize {
        8 + LamportPublicKey::SIZE + LamportSignature::SIZE + self.proof.siblings.len() * 33
    }
}

/// Errors from the many-time signer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MssError {
    /// All one-time keys have been consumed.
    Exhausted,
}

impl std::fmt::Display for MssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MssError::Exhausted => write!(f, "Merkle signer key supply exhausted"),
        }
    }
}

impl std::error::Error for MssError {}

impl MerkleSigner {
    /// Create a signer with `2^height` one-time keys derived from `seed`.
    pub fn new(seed: [u8; 32], height: u32) -> MerkleSigner {
        let capacity = 1usize << height;
        let fingerprints: Vec<[u8; 32]> = (0..capacity)
            .map(|i| {
                let (_, pk) = LamportSecretKey::derive(&seed, i as u64);
                pk.fingerprint()
            })
            .collect();
        let tree = MerkleTree::build(&fingerprints);
        MerkleSigner {
            seed,
            tree,
            next: 0,
            capacity,
        }
    }

    /// The long-lived public key (Merkle root) to register for this
    /// device identity.
    pub fn public_root(&self) -> Digest {
        self.tree.root()
    }

    /// Remaining one-time keys.
    pub fn remaining(&self) -> usize {
        self.capacity - self.next
    }

    /// Sign `msg`, consuming the next one-time key.
    pub fn sign(&mut self, msg: &[u8]) -> Result<MerkleSignature, MssError> {
        if self.next >= self.capacity {
            return Err(MssError::Exhausted);
        }
        let index = self.next;
        self.next += 1;
        let (sk, pk) = LamportSecretKey::derive(&self.seed, index as u64);
        let ots_sig = sk.sign(msg);
        let proof = self
            .tree
            .prove(index)
            .expect("index < capacity implies provable");
        Ok(MerkleSignature {
            index,
            ots_public: pk,
            ots_sig,
            proof,
        })
    }
}

/// Verify a many-time signature against the long-lived `root`.
pub fn merkle_verify(root: &Digest, msg: &[u8], sig: &MerkleSignature) -> bool {
    // 1. The one-time signature must check out under the disclosed key.
    if !lamport_verify(&sig.ots_public, msg, &sig.ots_sig) {
        return false;
    }
    // 2. The disclosed key's fingerprint must be committed under the root.
    if sig.proof.index != sig.index {
        return false;
    }
    merkle_proof_verify(root, &sig.ots_public.fingerprint(), &sig.proof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_root_is_deterministic() {
        let t1 = MerkleTree::build(&[b"a", b"b", b"c"]);
        let t2 = MerkleTree::build(&[b"a", b"b", b"c"]);
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn tree_root_depends_on_leaves_and_order() {
        let base = MerkleTree::build(&[b"a", b"b", b"c"]).root();
        assert_ne!(base, MerkleTree::build(&[b"a", b"b", b"d"]).root());
        assert_ne!(base, MerkleTree::build(&[b"b", b"a", b"c"]).root());
        assert_ne!(base, MerkleTree::build(&[b"a", b"b"]).root());
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        // Past 16 leaves both the 8-wide leaf and node paths engage;
        // 33-leaf trees also exercise tail + promoted-node interplay.
        for n in (1..=17).chain([24, 32, 33]) {
            let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 3]).collect();
            let tree = MerkleTree::build(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(
                    merkle_proof_verify(&tree.root(), leaf, &proof),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn multi_lane_build_matches_scalar_definition() {
        // Reference build straight from the definition, no lane tricks.
        fn scalar_root<T: AsRef<[u8]>>(leaves: &[T]) -> Digest {
            let mut level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
            while level.len() > 1 {
                level = level
                    .chunks(2)
                    .map(|p| match p {
                        [l, r] => node_hash(l, r),
                        [only] => *only,
                        _ => unreachable!(),
                    })
                    .collect();
            }
            level[0]
        }
        for n in [1usize, 2, 7, 8, 9, 16, 17, 31, 32, 33, 100] {
            // 32-byte leaves: the digest-commitment fast path.
            let short: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
            assert_eq!(
                MerkleTree::build(&short).root(),
                scalar_root(&short),
                "short n={n}"
            );
            // >63-byte leaves: forced scalar leaf hashing.
            let long: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 80]).collect();
            assert_eq!(
                MerkleTree::build(&long).root(),
                scalar_root(&long),
                "long n={n}"
            );
            // Mixed lengths: per-chunk fallback.
            let mixed: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 1 + i % 5]).collect();
            assert_eq!(
                MerkleTree::build(&mixed).root(),
                scalar_root(&mixed),
                "mixed n={n}"
            );
        }
    }

    #[test]
    fn wrong_leaf_or_index_rejected() {
        let leaves: Vec<&[u8]> = vec![b"w", b"x", b"y", b"z"];
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(1).unwrap();
        assert!(!merkle_proof_verify(&tree.root(), b"not-x", &proof));
        let mut bad = proof.clone();
        bad.index = 2;
        assert!(!merkle_proof_verify(&tree.root(), b"x", &bad));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A single-leaf tree whose leaf equals an interior-node encoding of
        // another tree must not collide, thanks to prefix separation.
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        let mut fake_leaf = vec![0x01u8];
        fake_leaf.extend_from_slice(a.as_bytes());
        fake_leaf.extend_from_slice(b.as_bytes());
        let t_fake = MerkleTree::build(&[fake_leaf]);
        let t_real = MerkleTree::build(&[a.as_bytes().to_vec(), b.as_bytes().to_vec()]);
        assert_ne!(t_fake.root(), t_real.root());
    }

    #[test]
    fn mss_sign_verify() {
        let mut signer = MerkleSigner::new([9u8; 32], 3);
        let root = signer.public_root();
        for i in 0..8 {
            let msg = format!("evidence {i}");
            let sig = signer.sign(msg.as_bytes()).unwrap();
            assert!(merkle_verify(&root, msg.as_bytes(), &sig));
            assert!(!merkle_verify(&root, b"other", &sig));
        }
        assert_eq!(signer.sign(b"ninth").unwrap_err(), MssError::Exhausted);
    }

    #[test]
    fn mss_signature_under_wrong_root_rejected() {
        let mut s1 = MerkleSigner::new([1u8; 32], 2);
        let s2 = MerkleSigner::new([2u8; 32], 2);
        let sig = s1.sign(b"msg").unwrap();
        assert!(!merkle_verify(&s2.public_root(), b"msg", &sig));
    }

    #[test]
    fn mss_index_mismatch_rejected() {
        let mut signer = MerkleSigner::new([3u8; 32], 2);
        let root = signer.public_root();
        let mut sig = signer.sign(b"msg").unwrap();
        sig.index = 1; // claim a different key slot than the proof shows
        assert!(!merkle_verify(&root, b"msg", &sig));
    }

    #[test]
    fn mss_keys_not_reused() {
        let mut signer = MerkleSigner::new([4u8; 32], 2);
        let a = signer.sign(b"one").unwrap();
        let b = signer.sign(b"two").unwrap();
        assert_ne!(a.index, b.index);
        assert_eq!(signer.remaining(), 2);
    }
}
