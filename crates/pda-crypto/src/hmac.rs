//! HMAC-SHA-256 (RFC 2104), validated against RFC 4231 test vectors.
//!
//! HMAC serves two roles in this stack:
//! 1. As the *symmetric* signing backend for evidence (the "cheap" point
//!    in the performance/security design space of Fig. 4 — see
//!    [`crate::sig`] for the pluggable scheme abstraction).
//! 2. As the PRF used to derive per-epoch Lamport keys deterministically.

use crate::sha256::{Midstate, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(msg);
    mac.finalize()
}

/// Precomputed HMAC key schedule: the compression states reached after
/// absorbing `key ⊕ ipad` and `key ⊕ opad`.
///
/// Those two blocks depend only on the key, yet a naive HMAC recomputes
/// both compressions for every message — for the 32-byte digests this
/// stack signs, that is two of the four SHA-256 compressions per tag.
/// Build the schedule once per key and every subsequent MAC starts from
/// the captured midstates instead.
#[derive(Clone, Copy, Debug)]
pub struct HmacKeySchedule {
    inner_start: Midstate,
    outer_start: Midstate,
}

impl HmacKeySchedule {
    /// Precompute the schedule for `key` (any length; keys longer than
    /// the block size are pre-hashed per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKeySchedule {
            inner_start: inner.midstate().expect("ipad is exactly one block"),
            outer_start: outer.midstate().expect("opad is exactly one block"),
        }
    }

    /// One-shot MAC using the precomputed schedule.
    pub fn mac(&self, msg: &[u8]) -> [u8; 32] {
        let mut m = HmacSha256::with_key_schedule(self);
        m.update(msg);
        m.finalize()
    }

    /// Midstate past the `key ⊕ ipad` block — feed message bytes from
    /// here. Exposed so batch callers can push many messages through
    /// [`crate::sha256::digest_many_from`] in one multi-lane pass.
    pub fn inner_midstate(&self) -> Midstate {
        self.inner_start
    }

    /// Midstate past the `key ⊕ opad` block — feed the inner digest from
    /// here to finish a tag.
    pub fn outer_midstate(&self) -> Midstate {
        self.outer_start
    }

    /// MAC `L` equal-length messages in one multi-lane pass, exactly
    /// matching [`HmacKeySchedule::mac`] per lane. Both HMAC passes (the
    /// message absorption and the outer finalization) run 8-wide, which
    /// is where Lamport key derivation spends nearly all of its time.
    pub fn mac_many<const L: usize>(&self, msgs: [&[u8]; L]) -> [[u8; 32]; L] {
        let inner = crate::sha256::digest_many_from(self.inner_start, msgs);
        let inner_refs: [&[u8]; L] = std::array::from_fn(|l| inner[l].as_slice());
        crate::sha256::digest_many_from(self.outer_start, inner_refs)
    }
}

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer hash state, already past the `key ⊕ opad` block.
    outer_start: Midstate,
}

impl HmacSha256 {
    /// Create a MAC instance keyed with `key` (any length; keys longer
    /// than the block size are pre-hashed per RFC 2104).
    ///
    /// Computes the key schedule from scratch; callers MACing many
    /// messages under one key should build an [`HmacKeySchedule`] once
    /// and use [`HmacSha256::with_key_schedule`].
    pub fn new(key: &[u8]) -> Self {
        HmacSha256::with_key_schedule(&HmacKeySchedule::new(key))
    }

    /// Create a MAC instance from a precomputed key schedule, skipping
    /// both key-block compressions.
    pub fn with_key_schedule(ks: &HmacKeySchedule) -> Self {
        HmacSha256 {
            inner: Sha256::from_midstate(ks.inner_start),
            outer_start: ks.outer_start,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, msg: &[u8]) {
        self.inner.update(msg);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::from_midstate(self.outer_start);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time comparison of two byte strings.
///
/// Used wherever MAC tags or signatures are checked, so that the simulated
/// verifiers model the behaviour real hardware must have (no early-exit
/// timing channel).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 4231 test cases 1-4, 6, 7.
    #[test]
    fn rfc4231_case1() {
        let key = vec![0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = vec![0xaa; 20];
        let msg = vec![0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case4() {
        let key = unhex("0102030405060708090a0b0c0d0e0f10111213141516171819");
        let msg = vec![0xcd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = vec![0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_long_msg() {
        let key = vec![0xaa; 131];
        let msg: &[u8] = b"This is a test using a larger than block-size key and a \
larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some-key";
        let msg = b"a message split across several update calls";
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(5) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn key_schedule_matches_fresh_mac() {
        // Schedules over short, block-size, and over-block keys must
        // produce identical tags to the from-scratch path.
        for key_len in [0usize, 8, 63, 64, 65, 131] {
            let key = vec![0x42u8; key_len];
            let ks = HmacKeySchedule::new(&key);
            for msg_len in [0usize, 5, 32, 64, 200] {
                let msg = vec![0x17u8; msg_len];
                assert_eq!(
                    ks.mac(&msg),
                    hmac_sha256(&key, &msg),
                    "key {key_len} msg {msg_len}"
                );
            }
        }
    }

    #[test]
    fn key_schedule_rfc4231_case2() {
        let ks = HmacKeySchedule::new(b"Jefe");
        assert_eq!(
            hex(&ks.mac(b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        let tag1 = hmac_sha256(b"key1", b"msg");
        let tag2 = hmac_sha256(b"key2", b"msg");
        assert_ne!(tag1, tag2);
    }

    #[test]
    fn mac_many_matches_scalar() {
        let ks = HmacKeySchedule::new(b"batch-key");
        for msg_len in [0usize, 16, 32, 55, 56, 64, 200] {
            let msgs_owned: Vec<Vec<u8>> =
                (0..8u8).map(|l| vec![l.wrapping_add(1); msg_len]).collect();
            let msgs: [&[u8]; 8] = std::array::from_fn(|l| msgs_owned[l].as_slice());
            let tags = ks.mac_many(msgs);
            for l in 0..8 {
                assert_eq!(tags[l], ks.mac(msgs[l]), "len {msg_len} lane {l}");
            }
        }
    }
}
