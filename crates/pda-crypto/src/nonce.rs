//! Nonce generation and freshness tracking.
//!
//! Copland phrases are bound by a nonce parameter `n` (following Helble
//! et al., as used in the paper's equation (3)). The relying party mints
//! a nonce per attestation request; the appraiser tracks seen nonces to
//! reject replays, and certificates are stored and retrieved keyed by
//! nonce (`store(n)` / `retrieve(n)`).

use rand::RngCore;
use std::collections::HashSet;
use std::fmt;

/// A 64-bit attestation nonce.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nonce(pub u64);

impl Nonce {
    /// Mint a fresh random nonce.
    pub fn random<R: RngCore>(rng: &mut R) -> Nonce {
        Nonce(rng.next_u64())
    }

    /// Big-endian byte encoding (what gets hashed into evidence).
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decode from bytes.
    pub fn from_bytes(b: [u8; 8]) -> Nonce {
        Nonce(u64::from_be_bytes(b))
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce({:#018x})", self.0)
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Replay window: tracks nonces already accepted by an appraiser.
///
/// Bounded via **two-generation rotation**: nonces accumulate in the
/// current generation; when it reaches `capacity` it becomes the
/// *previous* generation (replacing the one before it) and a fresh
/// current generation starts. Lookups consult both generations, so any
/// accepted nonce stays detectable for at least one full window of
/// fresh nonces after its acceptance — memory is bounded by
/// `2 × capacity` entries.
///
/// The seed implementation cleared the *entire* window on rotation,
/// which meant an attacker could push `capacity` fresh nonces and then
/// instantly replay every nonce seen before — the regression test
/// `previous_generation_still_rejected_after_rotation` pins the fix.
#[derive(Debug)]
pub struct ReplayWindow {
    current: HashSet<Nonce>,
    previous: HashSet<Nonce>,
    capacity: usize,
    /// How many rotations have happened (exposed for audit).
    epochs: u64,
}

impl ReplayWindow {
    /// Create a window whose generations each hold up to `capacity`
    /// nonces (total memory bound: `2 × capacity`).
    pub fn new(capacity: usize) -> ReplayWindow {
        assert!(capacity > 0, "replay window capacity must be positive");
        ReplayWindow {
            current: HashSet::new(),
            previous: HashSet::new(),
            capacity,
            epochs: 0,
        }
    }

    /// Record `n`; returns `false` if it was already seen (replay) in
    /// either the current or the previous generation.
    pub fn check_and_record(&mut self, n: Nonce) -> bool {
        if self.current.contains(&n) || self.previous.contains(&n) {
            return false;
        }
        if self.current.len() >= self.capacity {
            self.previous = std::mem::take(&mut self.current);
            self.epochs += 1;
        }
        self.current.insert(n);
        true
    }

    /// Has `n` been recorded in a still-tracked generation?
    pub fn contains(&self, n: Nonce) -> bool {
        self.current.contains(&n) || self.previous.contains(&n)
    }

    /// Number of completed rotations.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Nonces currently tracked (both generations).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// True if no nonces are tracked.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.previous.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_nonce_accepted_replay_rejected() {
        let mut w = ReplayWindow::new(8);
        let n = Nonce(42);
        assert!(w.check_and_record(n));
        assert!(!w.check_and_record(n));
    }

    #[test]
    fn rotation_bounds_memory() {
        let mut w = ReplayWindow::new(4);
        for i in 0..100 {
            assert!(w.check_and_record(Nonce(i)));
        }
        // Two generations of at most `capacity` nonces each.
        assert!(w.len() <= 2 * 4);
        assert!(w.epochs() >= 1);
    }

    /// Regression test for the clear-all rotation bug: a nonce accepted
    /// just before a rotation must still be rejected after the rotation
    /// (it lives in the *previous* generation). Under the old behaviour
    /// (`seen.clear()` on rotation) the replay below was accepted.
    #[test]
    fn previous_generation_still_rejected_after_rotation() {
        let cap = 4;
        let mut w = ReplayWindow::new(cap);
        // Fill the current generation to capacity.
        for i in 0..cap as u64 {
            assert!(w.check_and_record(Nonce(i)));
        }
        assert_eq!(w.epochs(), 0);
        // This insert triggers rotation: 0..cap move to the previous
        // generation, Nonce(100) starts the new current generation.
        assert!(w.check_and_record(Nonce(100)));
        assert_eq!(w.epochs(), 1);
        // Every pre-rotation nonce must still be detected as a replay.
        for i in 0..cap as u64 {
            assert!(
                !w.check_and_record(Nonce(i)),
                "nonce {i} replayable after rotation"
            );
            assert!(w.contains(Nonce(i)));
        }
        // And a nonce survives for at least one *full* window of fresh
        // nonces after acceptance: the first accepted nonce is only
        // forgotten after two rotations push it out.
        for i in 101..(100 + cap as u64) {
            assert!(w.check_and_record(Nonce(i)));
        }
        assert!(!w.check_and_record(Nonce(0)), "still in previous gen");
    }

    #[test]
    fn byte_round_trip() {
        let n = Nonce(0xdead_beef_cafe_f00d);
        assert_eq!(Nonce::from_bytes(n.to_bytes()), n);
    }

    #[test]
    fn random_nonces_are_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Nonce::random(&mut rng);
        let b = Nonce::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ReplayWindow::new(0);
    }
}
