//! Nonce generation and freshness tracking.
//!
//! Copland phrases are bound by a nonce parameter `n` (following Helble
//! et al., as used in the paper's equation (3)). The relying party mints
//! a nonce per attestation request; the appraiser tracks seen nonces to
//! reject replays, and certificates are stored and retrieved keyed by
//! nonce (`store(n)` / `retrieve(n)`).

use rand::RngCore;
use std::collections::HashSet;
use std::fmt;

/// A 64-bit attestation nonce.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nonce(pub u64);

impl Nonce {
    /// Mint a fresh random nonce.
    pub fn random<R: RngCore>(rng: &mut R) -> Nonce {
        Nonce(rng.next_u64())
    }

    /// Big-endian byte encoding (what gets hashed into evidence).
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decode from bytes.
    pub fn from_bytes(b: [u8; 8]) -> Nonce {
        Nonce(u64::from_be_bytes(b))
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce({:#018x})", self.0)
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Replay window: tracks nonces already accepted by an appraiser.
///
/// Bounded: once `capacity` is reached the *entire* window is rotated out
/// after being summarized. Rotation trades perfect replay detection for
/// bounded memory; the rotation epoch is part of the appraisal context,
/// so a replay across epochs is still detectable as "unknown nonce" (the
/// appraiser no longer has the original request open).
#[derive(Debug)]
pub struct ReplayWindow {
    seen: HashSet<Nonce>,
    capacity: usize,
    /// How many rotations have happened (exposed for audit).
    epochs: u64,
}

impl ReplayWindow {
    /// Create a window holding up to `capacity` nonces.
    pub fn new(capacity: usize) -> ReplayWindow {
        assert!(capacity > 0, "replay window capacity must be positive");
        ReplayWindow {
            seen: HashSet::new(),
            capacity,
            epochs: 0,
        }
    }

    /// Record `n`; returns `false` if it was already seen (replay).
    pub fn check_and_record(&mut self, n: Nonce) -> bool {
        if self.seen.contains(&n) {
            return false;
        }
        if self.seen.len() >= self.capacity {
            self.seen.clear();
            self.epochs += 1;
        }
        self.seen.insert(n);
        true
    }

    /// Has `n` been recorded in the current epoch?
    pub fn contains(&self, n: Nonce) -> bool {
        self.seen.contains(&n)
    }

    /// Number of completed rotations.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Nonces currently tracked.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if no nonces are tracked.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_nonce_accepted_replay_rejected() {
        let mut w = ReplayWindow::new(8);
        let n = Nonce(42);
        assert!(w.check_and_record(n));
        assert!(!w.check_and_record(n));
    }

    #[test]
    fn rotation_bounds_memory() {
        let mut w = ReplayWindow::new(4);
        for i in 0..10 {
            assert!(w.check_and_record(Nonce(i)));
        }
        assert!(w.len() <= 4);
        assert!(w.epochs() >= 1);
    }

    #[test]
    fn byte_round_trip() {
        let n = Nonce(0xdead_beef_cafe_f00d);
        assert_eq!(Nonce::from_bytes(n.to_bytes()), n);
    }

    #[test]
    fn random_nonces_are_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Nonce::random(&mut rng);
        let b = Nonce::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ReplayWindow::new(0);
    }
}
