//! 32-byte digest newtype used throughout the attestation stack.

use crate::sha256::Sha256;
use std::fmt;

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Hex-encode via table lookup. The obvious per-byte
/// `format!("{b:02x}")` routes every byte through the `fmt` machinery
/// and allocates a fresh `String` each time; this builds one exact-size
/// buffer with two table lookups per byte. Public because callers
/// outside this crate (evidence submission payloads in `pda-svc`) hex
/// multi-megabyte buffers through it.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[usize::from(b >> 4)]);
        out.push(HEX[usize::from(b & 0x0f)]);
    }
    // The table is pure ASCII, so the bytes are valid UTF-8.
    String::from_utf8(out).expect("hex output is ASCII")
}

/// A 256-bit digest value.
///
/// Wraps `[u8; 32]` to give hashes a distinct type from raw byte strings,
/// with hex formatting, parsing, and chaining helpers. All evidence
/// hash-chains and program measurements are expressed in terms of this
/// type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the root of fresh hash chains.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hash arbitrary bytes.
    pub fn of(data: &[u8]) -> Digest {
        Digest(Sha256::digest(data))
    }

    /// Hash the concatenation of several parts.
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        Digest(Sha256::digest_parts(parts))
    }

    /// Chain this digest with new data: `H(self || data)`.
    ///
    /// This is the primitive behind tamper-evident evidence chains — each
    /// hop's evidence folds the previous accumulated digest so removal or
    /// reordering of a link changes every later value.
    pub fn chain(&self, data: &[u8]) -> Digest {
        Digest(Sha256::digest_parts(&[&self.0, data]))
    }

    /// Combine two digests: `H(left || right)` (Merkle node rule).
    pub fn combine(left: &Digest, right: &Digest) -> Digest {
        Digest(Sha256::digest_parts(&[&left.0, &right.0]))
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lower-case hex rendering.
    pub fn to_hex(&self) -> String {
        hex_encode(&self.0)
    }

    /// Parse a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Digest(out))
    }

    /// Short prefix for logs and pseudonyms (first 8 hex chars).
    pub fn short(&self) -> String {
        hex_encode(&self.0[..4])
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(b: [u8; 32]) -> Self {
        Digest(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let d = Digest::of(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn chain_is_order_sensitive() {
        let a = Digest::ZERO.chain(b"a").chain(b"b");
        let b = Digest::ZERO.chain(b"b").chain(b"a");
        assert_ne!(a, b);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let x = Digest::of(b"x");
        let y = Digest::of(b"y");
        assert_ne!(Digest::combine(&x, &y), Digest::combine(&y, &x));
    }

    #[test]
    fn hex_encoding_matches_format_machinery() {
        // Pin the table encoder against the std formatter it replaced,
        // across every byte value.
        let mut all = [0u8; 32];
        for (i, b) in all.iter_mut().enumerate() {
            *b = (i * 8 + 7) as u8;
        }
        for d in [Digest(all), Digest([0u8; 32]), Digest([0xffu8; 32])] {
            let expected: String = d.0.iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(d.to_hex(), expected);
            assert_eq!(d.short(), expected[..8]);
        }
    }

    #[test]
    fn display_matches_to_hex() {
        let d = Digest::of(b"display");
        assert_eq!(format!("{d}"), d.to_hex());
    }
}
