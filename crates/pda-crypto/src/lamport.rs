//! Lamport one-time signatures over SHA-256.
//!
//! Hash-based signatures stand in for the signing primitive a hardware
//! root of trust would provide (see DESIGN.md §1). They are real
//! public-key signatures — unforgeable under the one-wayness of the hash —
//! implementable without any bignum dependency, which is what makes them
//! the right substitution in this offline build.
//!
//! A Lamport key signs **one** message. The [`crate::merkle`] module
//! lifts this to a many-time scheme by committing a tree of one-time
//! public keys.

use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use rand::RngCore;

/// Number of message bits covered (SHA-256 of the message is signed).
const BITS: usize = 256;

/// A Lamport one-time *secret* key: 2×256 random 32-byte preimages.
#[derive(Clone)]
pub struct LamportSecretKey {
    /// `pre[b][i]` is revealed when bit `i` of the message digest is `b`.
    pre: Box<[[u8; 32]]>, // length 512: [bit0 of pos0, bit1 of pos0, ...]
}

/// A Lamport one-time *public* key: hashes of all 512 preimages.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    img: Box<[[u8; 32]]>, // length 512, same layout as the secret key
}

/// A Lamport signature: the 256 preimages selected by the digest bits.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveal: Box<[[u8; 32]]>, // length 256
}

impl LamportSignature {
    /// Size of the serialized signature in bytes.
    pub const SIZE: usize = BITS * 32;

    /// Serialize to a flat byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::SIZE);
        for r in self.reveal.iter() {
            out.extend_from_slice(r);
        }
        out
    }

    /// Parse from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        let mut reveal = Vec::with_capacity(BITS);
        for chunk in bytes.chunks_exact(32) {
            let mut r = [0u8; 32];
            r.copy_from_slice(chunk);
            reveal.push(r);
        }
        Some(LamportSignature {
            reveal: reveal.into_boxed_slice(),
        })
    }
}

impl LamportPublicKey {
    /// Size of the serialized public key in bytes.
    pub const SIZE: usize = 2 * BITS * 32;

    /// A compact 32-byte commitment to this public key (hash of all
    /// images). This is what gets put into key registries and Merkle
    /// leaves.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for img in self.img.iter() {
            h.update(img);
        }
        h.finalize()
    }

    /// Serialize to a flat byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::SIZE);
        for i in self.img.iter() {
            out.extend_from_slice(i);
        }
        out
    }

    /// Parse from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        let mut img = Vec::with_capacity(2 * BITS);
        for chunk in bytes.chunks_exact(32) {
            let mut r = [0u8; 32];
            r.copy_from_slice(chunk);
            img.push(r);
        }
        Some(LamportPublicKey {
            img: img.into_boxed_slice(),
        })
    }
}

impl LamportSecretKey {
    /// Generate a key pair from an RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> (LamportSecretKey, LamportPublicKey) {
        let mut pre = vec![[0u8; 32]; 2 * BITS];
        for p in pre.iter_mut() {
            rng.fill_bytes(p);
        }
        Self::finish(pre)
    }

    /// Derive a key pair deterministically from a 32-byte seed and an
    /// index. This is how PERA switches mint per-epoch one-time keys
    /// without storing them all: `HMAC(seed, index || position)` expands
    /// the seed into the 512 preimages.
    pub fn derive(seed: &[u8; 32], index: u64) -> (LamportSecretKey, LamportPublicKey) {
        let mut pre = vec![[0u8; 32]; 2 * BITS];
        for (pos, p) in pre.iter_mut().enumerate() {
            let mut msg = [0u8; 16];
            msg[..8].copy_from_slice(&index.to_be_bytes());
            msg[8..].copy_from_slice(&(pos as u64).to_be_bytes());
            *p = hmac_sha256(seed, &msg);
        }
        Self::finish(pre)
    }

    fn finish(pre: Vec<[u8; 32]>) -> (LamportSecretKey, LamportPublicKey) {
        let img: Vec<[u8; 32]> = pre.iter().map(|p| Sha256::digest(p)).collect();
        (
            LamportSecretKey {
                pre: pre.into_boxed_slice(),
            },
            LamportPublicKey {
                img: img.into_boxed_slice(),
            },
        )
    }

    /// Sign a message (its SHA-256 digest is what is actually covered).
    ///
    /// One-time property: signing two *different* messages with the same
    /// key reveals preimages for both bit values at differing positions
    /// and breaks security. Callers must enforce single use; the
    /// [`crate::merkle::MerkleSigner`] does so automatically.
    pub fn sign(&self, msg: &[u8]) -> LamportSignature {
        let digest = Sha256::digest(msg);
        let mut reveal = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let bit = (digest[i / 8] >> (7 - (i % 8))) & 1;
            reveal.push(self.pre[2 * i + bit as usize]);
        }
        LamportSignature {
            reveal: reveal.into_boxed_slice(),
        }
    }
}

/// Verify `sig` on `msg` under `pk`.
pub fn lamport_verify(pk: &LamportPublicKey, msg: &[u8], sig: &LamportSignature) -> bool {
    if sig.reveal.len() != BITS {
        return false;
    }
    let digest = Sha256::digest(msg);
    for i in 0..BITS {
        let bit = (digest[i / 8] >> (7 - (i % 8))) & 1;
        let expect = &pk.img[2 * i + bit as usize];
        if &Sha256::digest(&sig.reveal[i]) != expect {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"evidence blob");
        assert!(lamport_verify(&pk, b"evidence blob", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"evidence blob");
        assert!(!lamport_verify(&pk, b"different blob", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (sk, _) = LamportSecretKey::generate(&mut rng());
        let (_, pk2) = LamportSecretKey::generate(&mut StdRng::seed_from_u64(8));
        let sig = sk.sign(b"msg");
        assert!(!lamport_verify(&pk2, b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let mut sig = sk.sign(b"msg");
        sig.reveal[17][0] ^= 1;
        assert!(!lamport_verify(&pk, b"msg", &sig));
    }

    #[test]
    fn derive_is_deterministic_and_index_separated() {
        let seed = [42u8; 32];
        let (_, pk_a) = LamportSecretKey::derive(&seed, 3);
        let (_, pk_b) = LamportSecretKey::derive(&seed, 3);
        let (_, pk_c) = LamportSecretKey::derive(&seed, 4);
        assert_eq!(pk_a.fingerprint(), pk_b.fingerprint());
        assert_ne!(pk_a.fingerprint(), pk_c.fingerprint());
    }

    #[test]
    fn serialization_round_trips() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"serialize me");
        let pk2 = LamportPublicKey::from_bytes(&pk.to_bytes()).unwrap();
        let sig2 = LamportSignature::from_bytes(&sig.to_bytes()).unwrap();
        assert!(lamport_verify(&pk2, b"serialize me", &sig2));
        assert!(LamportSignature::from_bytes(&[0u8; 3]).is_none());
        assert!(LamportPublicKey::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn fingerprint_is_stable() {
        let (_, pk) = LamportSecretKey::derive(&[1u8; 32], 0);
        assert_eq!(pk.fingerprint(), pk.fingerprint());
    }
}
