//! Lamport one-time signatures over SHA-256.
//!
//! Hash-based signatures stand in for the signing primitive a hardware
//! root of trust would provide (see DESIGN.md §1). They are real
//! public-key signatures — unforgeable under the one-wayness of the hash —
//! implementable without any bignum dependency, which is what makes them
//! the right substitution in this offline build.
//!
//! A Lamport key signs **one** message. The [`crate::merkle`] module
//! lifts this to a many-time scheme by committing a tree of one-time
//! public keys.

use crate::hmac::HmacKeySchedule;
use crate::sha256::{digest_many, Sha256};
use rand::RngCore;

/// Number of message bits covered (SHA-256 of the message is signed).
const BITS: usize = 256;

/// A Lamport one-time *secret* key: 2×256 random 32-byte preimages.
#[derive(Clone)]
pub struct LamportSecretKey {
    /// `pre[b][i]` is revealed when bit `i` of the message digest is `b`.
    pre: Box<[[u8; 32]]>, // length 512: [bit0 of pos0, bit1 of pos0, ...]
}

/// A Lamport one-time *public* key: hashes of all 512 preimages.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    img: Box<[[u8; 32]]>, // length 512, same layout as the secret key
}

/// A Lamport signature: the 256 preimages selected by the digest bits.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveal: Box<[[u8; 32]]>, // length 256
}

impl LamportSignature {
    /// Size of the serialized signature in bytes.
    pub const SIZE: usize = BITS * 32;

    /// The 256 revealed preimages, in bit-position order. Exposed so
    /// tests can assert on record identity (the heap allocation behind
    /// this slice survives moves but not clones).
    pub fn reveals(&self) -> &[[u8; 32]] {
        &self.reveal
    }

    /// Serialize to a flat byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; Self::SIZE];
        self.write_to(&mut out).expect("sized buffer");
        out
    }

    /// Serialize into the front of `out` without allocating; returns the
    /// number of bytes written, or `None` if `out` is shorter than
    /// [`Self::SIZE`]. This is the wire-path variant: an 8 KB signature
    /// per record is too large to bounce through a fresh `Vec` each time.
    pub fn write_to(&self, out: &mut [u8]) -> Option<usize> {
        if out.len() < Self::SIZE {
            return None;
        }
        for (chunk, r) in out.chunks_exact_mut(32).zip(self.reveal.iter()) {
            chunk.copy_from_slice(r);
        }
        Some(Self::SIZE)
    }

    /// Parse from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        Self::read_from(bytes)
    }

    /// Parse from the first [`Self::SIZE`] bytes of `bytes` (a prefix
    /// read — trailing bytes are the caller's to interpret).
    pub fn read_from(bytes: &[u8]) -> Option<Self> {
        let bytes = bytes.get(..Self::SIZE)?;
        let mut reveal = Vec::with_capacity(BITS);
        for chunk in bytes.chunks_exact(32) {
            let mut r = [0u8; 32];
            r.copy_from_slice(chunk);
            reveal.push(r);
        }
        Some(LamportSignature {
            reveal: reveal.into_boxed_slice(),
        })
    }
}

impl LamportPublicKey {
    /// Size of the serialized public key in bytes.
    pub const SIZE: usize = 2 * BITS * 32;

    /// A compact 32-byte commitment to this public key (hash of all
    /// images). This is what gets put into key registries and Merkle
    /// leaves.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for img in self.img.iter() {
            h.update(img);
        }
        h.finalize()
    }

    /// Serialize to a flat byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; Self::SIZE];
        self.write_to(&mut out).expect("sized buffer");
        out
    }

    /// Serialize into the front of `out` without allocating; returns the
    /// number of bytes written, or `None` if `out` is too short.
    pub fn write_to(&self, out: &mut [u8]) -> Option<usize> {
        if out.len() < Self::SIZE {
            return None;
        }
        for (chunk, i) in out.chunks_exact_mut(32).zip(self.img.iter()) {
            chunk.copy_from_slice(i);
        }
        Some(Self::SIZE)
    }

    /// Parse from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        Self::read_from(bytes)
    }

    /// Parse from the first [`Self::SIZE`] bytes of `bytes` (a prefix
    /// read — trailing bytes are the caller's to interpret).
    pub fn read_from(bytes: &[u8]) -> Option<Self> {
        let bytes = bytes.get(..Self::SIZE)?;
        let mut img = Vec::with_capacity(2 * BITS);
        for chunk in bytes.chunks_exact(32) {
            let mut r = [0u8; 32];
            r.copy_from_slice(chunk);
            img.push(r);
        }
        Some(LamportPublicKey {
            img: img.into_boxed_slice(),
        })
    }
}

impl LamportSecretKey {
    /// Generate a key pair from an RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> (LamportSecretKey, LamportPublicKey) {
        let mut pre = vec![[0u8; 32]; 2 * BITS];
        for p in pre.iter_mut() {
            rng.fill_bytes(p);
        }
        Self::finish(pre)
    }

    /// Derive a key pair deterministically from a 32-byte seed and an
    /// index. This is how PERA switches mint per-epoch one-time keys
    /// without storing them all: `HMAC(seed, index || position)` expands
    /// the seed into the 512 preimages.
    ///
    /// The 512 HMAC inputs are independent 16-byte messages, so the
    /// expansion runs eight positions per multi-lane pass (the key-block
    /// compressions are shared through the schedule); derivation is the
    /// dominant cost of every Lamport/MSS signing operation.
    pub fn derive(seed: &[u8; 32], index: u64) -> (LamportSecretKey, LamportPublicKey) {
        const L: usize = 8;
        let ks = HmacKeySchedule::new(seed);
        let mut msgs = [[0u8; 16]; 2 * BITS];
        for (pos, msg) in msgs.iter_mut().enumerate() {
            msg[..8].copy_from_slice(&index.to_be_bytes());
            msg[8..].copy_from_slice(&(pos as u64).to_be_bytes());
        }
        let mut pre = vec![[0u8; 32]; 2 * BITS];
        // 2*BITS = 512 is a multiple of the lane count; no scalar tail.
        for (prs, ms) in pre.chunks_exact_mut(L).zip(msgs.chunks_exact(L)) {
            let lanes: [&[u8]; L] = std::array::from_fn(|l| ms[l].as_slice());
            prs.copy_from_slice(&ks.mac_many(lanes));
        }
        Self::finish(pre)
    }

    fn finish(pre: Vec<[u8; 32]>) -> (LamportSecretKey, LamportPublicKey) {
        const L: usize = 8;
        let mut img = vec![[0u8; 32]; pre.len()];
        let mut chunks = img.chunks_exact_mut(L).zip(pre.chunks_exact(L));
        for (is, ps) in &mut chunks {
            let lanes: [&[u8]; L] = std::array::from_fn(|l| ps[l].as_slice());
            is.copy_from_slice(&digest_many(lanes));
        }
        let rem = pre.len() % L;
        for (i, p) in img[pre.len() - rem..]
            .iter_mut()
            .zip(&pre[pre.len() - rem..])
        {
            *i = Sha256::digest(p);
        }
        (
            LamportSecretKey {
                pre: pre.into_boxed_slice(),
            },
            LamportPublicKey {
                img: img.into_boxed_slice(),
            },
        )
    }

    /// Sign a message (its SHA-256 digest is what is actually covered).
    ///
    /// One-time property: signing two *different* messages with the same
    /// key reveals preimages for both bit values at differing positions
    /// and breaks security. Callers must enforce single use; the
    /// [`crate::merkle::MerkleSigner`] does so automatically.
    pub fn sign(&self, msg: &[u8]) -> LamportSignature {
        let digest = Sha256::digest(msg);
        let mut reveal = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let bit = (digest[i / 8] >> (7 - (i % 8))) & 1;
            reveal.push(self.pre[2 * i + bit as usize]);
        }
        LamportSignature {
            reveal: reveal.into_boxed_slice(),
        }
    }
}

/// Verify `sig` on `msg` under `pk`.
///
/// Hashes the 256 revealed preimages eight per multi-lane pass and
/// accumulates the comparison over all positions (no early exit — same
/// no-timing-channel discipline as [`crate::hmac::ct_eq`]).
pub fn lamport_verify(pk: &LamportPublicKey, msg: &[u8], sig: &LamportSignature) -> bool {
    const L: usize = 8;
    if sig.reveal.len() != BITS {
        return false;
    }
    let digest = Sha256::digest(msg);
    let mut acc = 0u8;
    // BITS = 256 is a multiple of the lane count; no scalar tail.
    for (base, rs) in sig.reveal.chunks_exact(L).enumerate() {
        let lanes: [&[u8]; L] = std::array::from_fn(|l| rs[l].as_slice());
        let hashed = digest_many(lanes);
        for (l, h) in hashed.iter().enumerate() {
            let i = base * L + l;
            let bit = (digest[i / 8] >> (7 - (i % 8))) & 1;
            let expect = &pk.img[2 * i + bit as usize];
            for (x, y) in h.iter().zip(expect.iter()) {
                acc |= x ^ y;
            }
        }
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"evidence blob");
        assert!(lamport_verify(&pk, b"evidence blob", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"evidence blob");
        assert!(!lamport_verify(&pk, b"different blob", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (sk, _) = LamportSecretKey::generate(&mut rng());
        let (_, pk2) = LamportSecretKey::generate(&mut StdRng::seed_from_u64(8));
        let sig = sk.sign(b"msg");
        assert!(!lamport_verify(&pk2, b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let mut sig = sk.sign(b"msg");
        sig.reveal[17][0] ^= 1;
        assert!(!lamport_verify(&pk, b"msg", &sig));
    }

    #[test]
    fn derive_is_deterministic_and_index_separated() {
        let seed = [42u8; 32];
        let (_, pk_a) = LamportSecretKey::derive(&seed, 3);
        let (_, pk_b) = LamportSecretKey::derive(&seed, 3);
        let (_, pk_c) = LamportSecretKey::derive(&seed, 4);
        assert_eq!(pk_a.fingerprint(), pk_b.fingerprint());
        assert_ne!(pk_a.fingerprint(), pk_c.fingerprint());
    }

    #[test]
    fn serialization_round_trips() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"serialize me");
        let pk2 = LamportPublicKey::from_bytes(&pk.to_bytes()).unwrap();
        let sig2 = LamportSignature::from_bytes(&sig.to_bytes()).unwrap();
        assert!(lamport_verify(&pk2, b"serialize me", &sig2));
        assert!(LamportSignature::from_bytes(&[0u8; 3]).is_none());
        assert!(LamportPublicKey::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn fingerprint_is_stable() {
        let (_, pk) = LamportSecretKey::derive(&[1u8; 32], 0);
        assert_eq!(pk.fingerprint(), pk.fingerprint());
    }

    #[test]
    fn derive_matches_per_position_hmac() {
        // The multi-lane expansion must produce byte-identical keys to
        // the definitional per-position HMAC (old wire formats and
        // registry fingerprints depend on it).
        use crate::hmac::hmac_sha256;
        let seed = [9u8; 32];
        let (sk, _) = LamportSecretKey::derive(&seed, 5);
        for pos in [0usize, 1, 7, 8, 255, 511] {
            let mut msg = [0u8; 16];
            msg[..8].copy_from_slice(&5u64.to_be_bytes());
            msg[8..].copy_from_slice(&(pos as u64).to_be_bytes());
            assert_eq!(sk.pre[pos], hmac_sha256(&seed, &msg), "pos {pos}");
        }
    }

    #[test]
    fn write_to_matches_to_bytes_and_prefix_reads() {
        let (sk, pk) = LamportSecretKey::generate(&mut rng());
        let sig = sk.sign(b"slice wire");

        let mut buf = vec![0xffu8; LamportSignature::SIZE + 10];
        assert_eq!(sig.write_to(&mut buf), Some(LamportSignature::SIZE));
        assert_eq!(&buf[..LamportSignature::SIZE], &sig.to_bytes()[..]);
        assert_eq!(&buf[LamportSignature::SIZE..], &[0xff; 10]); // untouched tail
        let back = LamportSignature::read_from(&buf).unwrap(); // prefix read
        assert!(lamport_verify(&pk, b"slice wire", &back));

        let mut short = vec![0u8; LamportSignature::SIZE - 1];
        assert_eq!(sig.write_to(&mut short), None);
        assert!(LamportSignature::read_from(&short).is_none());

        let mut pk_buf = vec![0u8; LamportPublicKey::SIZE];
        assert_eq!(pk.write_to(&mut pk_buf), Some(LamportPublicKey::SIZE));
        let pk_back = LamportPublicKey::read_from(&pk_buf).unwrap();
        assert_eq!(pk_back.fingerprint(), pk.fingerprint());
        assert_eq!(pk.write_to(&mut pk_buf[..1]), None);
    }
}
