//! Pluggable signing backends for attestation evidence.
//!
//! Fig. 3's caption says evidence-handling is "tuned to balance
//! performance and security"; this module is the tuning knob for the
//! signing axis. Three backends with very different cost/size/security
//! profiles share one interface:
//!
//! * [`SigScheme::Hmac`] — symmetric, 32-byte tags, cheapest; models a
//!   shared-key deployment where the appraiser also holds the key.
//! * [`SigScheme::LamportOts`] — one derived key per signature, public
//!   verification, 8 KiB signatures; models a hardware OTS unit whose
//!   epoch keys are pre-registered with the appraiser.
//! * [`SigScheme::MerkleMss`] — long-lived device identity: one 32-byte
//!   root verifies many signatures via authentication paths.
//!
//! The ablation experiments E7/E11 (DESIGN.md §4) sweep these backends.

use crate::batch::BatchLeaf;
use crate::digest::Digest;
use crate::hmac::{ct_eq, hmac_sha256, HmacKeySchedule};
use crate::lamport::{lamport_verify, LamportPublicKey, LamportSecretKey, LamportSignature};
use crate::merkle::{merkle_proof_verify, merkle_verify, MerkleSignature, MerkleSigner, MssError};
use std::fmt;

/// Which signing backend a device uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SigScheme {
    /// HMAC-SHA-256 with a key shared with the appraiser.
    Hmac,
    /// Per-message Lamport one-time signatures (key derived per epoch,
    /// epoch public keys pre-registered with verifiers).
    LamportOts,
    /// Merkle many-time signatures under one long-lived root.
    MerkleMss,
}

impl SigScheme {
    /// All backends, for parameter sweeps.
    pub const ALL: [SigScheme; 3] = [SigScheme::Hmac, SigScheme::LamportOts, SigScheme::MerkleMss];
}

impl fmt::Display for SigScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigScheme::Hmac => write!(f, "hmac"),
            SigScheme::LamportOts => write!(f, "lamport-ots"),
            SigScheme::MerkleMss => write!(f, "merkle-mss"),
        }
    }
}

/// A signature value from any backend.
#[derive(Clone)]
pub enum Signature {
    /// 32-byte HMAC tag.
    Hmac([u8; 32]),
    /// Lamport signature plus the index of the derived epoch key used.
    Lamport {
        /// Epoch/index of the derived one-time key.
        index: u64,
        /// The one-time signature.
        sig: LamportSignature,
    },
    /// Merkle many-time signature.
    Merkle(Box<MerkleSignature>),
    /// One leaf's share of a batch signature (see [`crate::batch`]): an
    /// inclusion proof under a Merkle root plus a shared reference to
    /// the one real signature over that root.
    Batch(BatchLeaf),
}

impl Signature {
    /// Bytes this signature occupies on the wire — the quantity the
    /// overhead experiments track.
    ///
    /// For [`Signature::Batch`] this is the *amortized* per-leaf share:
    /// the leaf's own proof bytes plus `1/N`th of the shared root
    /// commitment and signature, which is what a wire format that sends
    /// the commitment once per batch actually costs per record.
    pub fn wire_size(&self) -> usize {
        match self {
            Signature::Hmac(_) => 32,
            Signature::Lamport { .. } => 8 + LamportSignature::SIZE,
            Signature::Merkle(m) => m.wire_size(),
            Signature::Batch(b) => {
                let own = 8 + b.proof.siblings.len() * 33;
                let shared = 32 + b.commit.root_sig.wire_size();
                own + shared.div_ceil(b.commit.len.max(1) as usize)
            }
        }
    }

    /// The scheme this signature belongs to. A batch signature belongs
    /// to its **root** signature's scheme — registries and telemetry
    /// treat a batch leaf exactly like the signature that anchors it.
    pub fn scheme(&self) -> SigScheme {
        match self {
            Signature::Hmac(_) => SigScheme::Hmac,
            Signature::Lamport { .. } => SigScheme::LamportOts,
            Signature::Merkle(_) => SigScheme::MerkleMss,
            Signature::Batch(b) => b.commit.root_sig.scheme(),
        }
    }

    /// Human-readable kind label: the scheme name, wrapped in
    /// `batch(...)` for batch leaves — what audit-log events record, so
    /// batched and per-packet runs stay distinguishable after the fact.
    pub fn label(&self) -> String {
        match self {
            Signature::Batch(b) => format!("batch({})", b.commit.root_sig.scheme()),
            other => other.scheme().to_string(),
        }
    }

    /// Append a self-contained, tagged encoding to `out` — the zero-copy
    /// wire path: large signatures write straight into the caller's
    /// buffer through the slice serializers instead of bouncing through
    /// per-signature `Vec`s. (Unlike [`Signature::wire_size`], which
    /// estimates the *amortized* payload for batch leaves, this writes
    /// the full self-contained encoding including framing tags.)
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        fn put_lamport(out: &mut Vec<u8>, sig: &LamportSignature) {
            let off = out.len();
            out.resize(off + LamportSignature::SIZE, 0);
            sig.write_to(&mut out[off..]).expect("sized buffer");
        }
        fn put_proof(out: &mut Vec<u8>, proof: &crate::merkle::MerkleProof) {
            out.extend_from_slice(&(proof.index as u64).to_be_bytes());
            out.extend_from_slice(&(proof.siblings.len() as u32).to_be_bytes());
            for sib in &proof.siblings {
                match sib {
                    Some(d) => {
                        out.push(1);
                        out.extend_from_slice(d.as_bytes());
                    }
                    None => out.push(0),
                }
            }
        }
        match self {
            Signature::Hmac(tag) => {
                out.push(0);
                out.extend_from_slice(tag);
            }
            Signature::Lamport { index, sig } => {
                out.push(1);
                out.extend_from_slice(&index.to_be_bytes());
                put_lamport(out, sig);
            }
            Signature::Merkle(m) => {
                out.push(2);
                out.extend_from_slice(&(m.index as u64).to_be_bytes());
                let off = out.len();
                out.resize(off + LamportPublicKey::SIZE, 0);
                m.ots_public
                    .write_to(&mut out[off..])
                    .expect("sized buffer");
                put_lamport(out, &m.ots_sig);
                put_proof(out, &m.proof);
            }
            Signature::Batch(b) => {
                out.push(3);
                put_proof(out, &b.proof);
                out.extend_from_slice(b.commit.root.as_bytes());
                out.extend_from_slice(&b.commit.len.to_be_bytes());
                b.commit.root_sig.write_wire(out);
            }
        }
    }
}

/// Bounds-checked cursor over untrusted wire bytes. Every accessor
/// returns `None` instead of panicking — the decode path faces network
/// input, so there must be no slice-index panics.
struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    fn new(buf: &'a [u8]) -> WireCursor<'a> {
        WireCursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32_be(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes(s.try_into().expect("4B")))
    }

    fn u64_be(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes(s.try_into().expect("8B")))
    }

    fn digest(&mut self) -> Option<Digest> {
        let s = self.take(32)?;
        let mut d = [0u8; 32];
        d.copy_from_slice(s);
        Some(Digest(d))
    }
}

/// Hard cap on decoded Merkle proof depth: a tree of 2^64 leaves needs
/// 64 levels, so anything deeper is garbage and would otherwise let a
/// hostile length prefix drive allocation.
const MAX_PROOF_DEPTH: u32 = 64;

fn read_proof(c: &mut WireCursor<'_>) -> Option<crate::merkle::MerkleProof> {
    let index = c.u64_be()? as usize;
    let n = c.u32_be()?;
    if n > MAX_PROOF_DEPTH {
        return None;
    }
    let mut siblings = Vec::with_capacity(n as usize);
    for _ in 0..n {
        siblings.push(match c.u8()? {
            0 => None,
            1 => Some(c.digest()?),
            _ => return None,
        });
    }
    Some(crate::merkle::MerkleProof { index, siblings })
}

fn read_signature(c: &mut WireCursor<'_>, allow_batch: bool) -> Option<Signature> {
    match c.u8()? {
        0 => {
            let mut tag = [0u8; 32];
            tag.copy_from_slice(c.take(32)?);
            Some(Signature::Hmac(tag))
        }
        1 => {
            let index = c.u64_be()?;
            let sig = LamportSignature::read_from(c.take(LamportSignature::SIZE)?)?;
            Some(Signature::Lamport { index, sig })
        }
        2 => {
            let index = c.u64_be()? as usize;
            let ots_public = LamportPublicKey::read_from(c.take(LamportPublicKey::SIZE)?)?;
            let ots_sig = LamportSignature::read_from(c.take(LamportSignature::SIZE)?)?;
            let proof = read_proof(c)?;
            Some(Signature::Merkle(Box::new(MerkleSignature {
                index,
                ots_public,
                ots_sig,
                proof,
            })))
        }
        3 if allow_batch => {
            let proof = read_proof(c)?;
            let root = c.digest()?;
            let len = c.u32_be()?;
            // A batch must bottom out in one real signature; nested
            // batch framing is rejected exactly like `verify` rejects it.
            let root_sig = read_signature(c, false)?;
            Some(Signature::Batch(BatchLeaf {
                proof,
                commit: std::sync::Arc::new(crate::batch::BatchCommit {
                    root,
                    len,
                    root_sig,
                }),
            }))
        }
        _ => None,
    }
}

impl Signature {
    /// Decode one signature from the front of `buf`: the inverse of
    /// [`Signature::write_wire`]. Returns the signature and the number
    /// of bytes consumed, or `None` on truncated, malformed, or
    /// nested-batch input. Never panics on arbitrary bytes.
    pub fn read_wire(buf: &[u8]) -> Option<(Signature, usize)> {
        let mut c = WireCursor::new(buf);
        let sig = read_signature(&mut c, true)?;
        Some((sig, c.pos))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}, {}B)", self.scheme(), self.wire_size())
    }
}

/// A signing identity owned by one device/principal.
pub struct Signer {
    scheme: SigScheme,
    /// Secret seed: HMAC key, or Lamport/Merkle derivation seed.
    seed: [u8; 32],
    /// Next Lamport epoch index (LamportOts only).
    next_epoch: u64,
    /// Merkle signer state (MerkleMss only).
    mss: Option<MerkleSigner>,
    /// Precomputed HMAC key schedule (Hmac only): the key is fixed for
    /// the signer's lifetime, so the ipad/opad compressions are paid
    /// once here instead of on every signed record.
    hmac_ks: Option<HmacKeySchedule>,
}

/// The verification-side key material, safe to hand to appraisers.
///
/// For `LamportOts` the registered material is the list of pre-committed
/// epoch public keys. This trades registry size for simplicity — a real
/// deployment would register fingerprints and have the signer disclose
/// keys in-band; the *security argument is identical* (the appraiser pins
/// exactly the same key bits either way), so the simulation keeps the
/// simpler form and accounts wire size via [`Signature::wire_size`].
#[derive(Clone)]
pub enum VerifyKey {
    /// HMAC shares the secret.
    Hmac([u8; 32]),
    /// Pre-committed epoch public keys, index = epoch.
    Lamport(Vec<LamportPublicKey>),
    /// Merkle root of the device identity tree.
    Merkle(Digest),
}

impl VerifyKey {
    /// A compact digest identifying this key (usable as a key ID).
    pub fn key_id(&self) -> Digest {
        match self {
            VerifyKey::Hmac(k) => Digest::of_parts(&[b"hmac-key-id", k]),
            VerifyKey::Lamport(keys) => {
                let mut acc = Digest::of(b"lamport-key-id");
                for k in keys {
                    acc = acc.chain(&k.fingerprint());
                }
                acc
            }
            VerifyKey::Merkle(root) => Digest::of_parts(&[b"merkle-key-id", root.as_bytes()]),
        }
    }
}

/// Errors from signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignError {
    /// One-time/many-time key supply exhausted.
    KeysExhausted,
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::KeysExhausted => write!(f, "signing keys exhausted"),
        }
    }
}

impl std::error::Error for SignError {}

impl From<MssError> for SignError {
    fn from(_: MssError) -> Self {
        SignError::KeysExhausted
    }
}

impl Signer {
    /// Create a signer. `mss_height` controls the Merkle tree size for
    /// [`SigScheme::MerkleMss`] (2^height signatures); ignored otherwise.
    pub fn new(scheme: SigScheme, seed: [u8; 32], mss_height: u32) -> Signer {
        let mss = match scheme {
            SigScheme::MerkleMss => Some(MerkleSigner::new(seed, mss_height)),
            _ => None,
        };
        let hmac_ks = match scheme {
            SigScheme::Hmac => Some(HmacKeySchedule::new(&seed)),
            _ => None,
        };
        Signer {
            scheme,
            seed,
            next_epoch: 0,
            mss,
            hmac_ks,
        }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> SigScheme {
        self.scheme
    }

    /// Produce the verification key to register with appraisers.
    ///
    /// `epochs` bounds how many Lamport epoch keys are pre-committed
    /// (ignored for the other schemes). Signatures past that epoch will
    /// not verify until the key is re-registered.
    pub fn verify_key(&self, epochs: u64) -> VerifyKey {
        match self.scheme {
            SigScheme::Hmac => VerifyKey::Hmac(self.seed),
            SigScheme::LamportOts => VerifyKey::Lamport(
                (0..epochs)
                    .map(|i| LamportSecretKey::derive(&self.seed, i).1)
                    .collect(),
            ),
            SigScheme::MerkleMss => VerifyKey::Merkle(
                self.mss
                    .as_ref()
                    .expect("MerkleMss signer has mss state")
                    .public_root(),
            ),
        }
    }

    /// Sign a message.
    pub fn sign(&mut self, msg: &[u8]) -> Result<Signature, SignError> {
        match self.scheme {
            SigScheme::Hmac => {
                let ks = self.hmac_ks.as_ref().expect("Hmac signer has key schedule");
                Ok(Signature::Hmac(ks.mac(msg)))
            }
            SigScheme::LamportOts => {
                let index = self.next_epoch;
                self.next_epoch += 1;
                let (sk, _) = LamportSecretKey::derive(&self.seed, index);
                Ok(Signature::Lamport {
                    index,
                    sig: sk.sign(msg),
                })
            }
            SigScheme::MerkleMss => {
                let mss = self.mss.as_mut().expect("MerkleMss signer has mss state");
                Ok(Signature::Merkle(Box::new(mss.sign(msg)?)))
            }
        }
    }

    /// Remaining signatures before key exhaustion (`None` = unlimited).
    pub fn remaining(&self) -> Option<usize> {
        self.mss.as_ref().map(|m| m.remaining())
    }

    /// Sign `msgs` as one batch: one key consumed, one
    /// [`Signature::Batch`] per message. See [`crate::batch::sign_batch`].
    pub fn sign_batch(&mut self, msgs: &[&[u8]]) -> Result<Vec<Signature>, SignError> {
        crate::batch::sign_batch(self, msgs)
    }
}

/// Verify a signature against a registered verification key.
///
/// A [`Signature::Batch`] leaf verifies in two steps: the message must
/// prove membership under the batch root, and the root signature must
/// verify under `key` exactly as a plain signature over the root bytes.
/// Nested batches (a batch anchored by another batch) are rejected —
/// amortization must bottom out in one real signing operation.
pub fn verify(key: &VerifyKey, msg: &[u8], sig: &Signature) -> bool {
    match (key, sig) {
        (VerifyKey::Hmac(k), Signature::Hmac(tag)) => ct_eq(&hmac_sha256(k, msg), tag),
        (VerifyKey::Lamport(keys), Signature::Lamport { index, sig }) => keys
            .get(*index as usize)
            .is_some_and(|pk| lamport_verify(pk, msg, sig)),
        (VerifyKey::Merkle(root), Signature::Merkle(m)) => merkle_verify(root, msg, m),
        (key, Signature::Batch(b)) => {
            !matches!(b.commit.root_sig, Signature::Batch(_))
                && merkle_proof_verify(&b.commit.root, msg, &b.proof)
                && verify(key, b.commit.root.as_bytes(), &b.commit.root_sig)
        }
        _ => false, // scheme mismatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_round_trip() {
        let mut s = Signer::new(SigScheme::Hmac, [5u8; 32], 0);
        let vk = s.verify_key(0);
        let sig = s.sign(b"msg").unwrap();
        assert!(verify(&vk, b"msg", &sig));
        assert!(!verify(&vk, b"other", &sig));
    }

    #[test]
    fn hmac_wrong_key_rejected() {
        let mut s = Signer::new(SigScheme::Hmac, [5u8; 32], 0);
        let other = Signer::new(SigScheme::Hmac, [6u8; 32], 0);
        let sig = s.sign(b"msg").unwrap();
        assert!(!verify(&other.verify_key(0), b"msg", &sig));
    }

    #[test]
    fn lamport_round_trip() {
        let mut s = Signer::new(SigScheme::LamportOts, [7u8; 32], 0);
        let vk = s.verify_key(4);
        for i in 0..4 {
            let m = format!("epoch {i}");
            let sig = s.sign(m.as_bytes()).unwrap();
            assert!(verify(&vk, m.as_bytes(), &sig));
            assert!(!verify(&vk, b"tampered", &sig));
        }
    }

    #[test]
    fn lamport_epoch_advances() {
        let mut s = Signer::new(SigScheme::LamportOts, [7u8; 32], 0);
        let a = s.sign(b"one").unwrap();
        let b = s.sign(b"two").unwrap();
        let (Signature::Lamport { index: ia, .. }, Signature::Lamport { index: ib, .. }) = (&a, &b)
        else {
            panic!()
        };
        assert_eq!((*ia, *ib), (0, 1));
    }

    #[test]
    fn lamport_uncommitted_epoch_rejected() {
        let mut s = Signer::new(SigScheme::LamportOts, [7u8; 32], 0);
        let vk = s.verify_key(1); // only epoch 0 committed
        s.sign(b"zero").unwrap();
        let sig = s.sign(b"one").unwrap(); // epoch 1, not committed
        assert!(!verify(&vk, b"one", &sig));
    }

    #[test]
    fn merkle_round_trip_and_exhaustion() {
        let mut s = Signer::new(SigScheme::MerkleMss, [8u8; 32], 2);
        let vk = s.verify_key(0);
        for i in 0..4 {
            let m = format!("m{i}");
            let sig = s.sign(m.as_bytes()).unwrap();
            assert!(verify(&vk, m.as_bytes(), &sig));
        }
        assert_eq!(s.sign(b"m4").unwrap_err(), SignError::KeysExhausted);
        assert_eq!(s.remaining(), Some(0));
    }

    #[test]
    fn scheme_mismatch_rejected() {
        let mut hmac = Signer::new(SigScheme::Hmac, [1u8; 32], 0);
        let mut mss = Signer::new(SigScheme::MerkleMss, [1u8; 32], 2);
        let hmac_sig = hmac.sign(b"m").unwrap();
        let mss_sig = mss.sign(b"m").unwrap();
        assert!(!verify(&mss.verify_key(0), b"m", &hmac_sig));
        assert!(!verify(&hmac.verify_key(0), b"m", &mss_sig));
    }

    #[test]
    fn wire_sizes_ordered_as_expected() {
        let mut h = Signer::new(SigScheme::Hmac, [1u8; 32], 0);
        let mut l = Signer::new(SigScheme::LamportOts, [1u8; 32], 0);
        let mut m = Signer::new(SigScheme::MerkleMss, [1u8; 32], 3);
        let sh = h.sign(b"x").unwrap().wire_size();
        let sl = l.sign(b"x").unwrap().wire_size();
        let sm = m.sign(b"x").unwrap().wire_size();
        assert!(sh < sl, "hmac ({sh}) < lamport ({sl})");
        assert!(sl < sm, "lamport ({sl}) < merkle ({sm})");
    }

    #[test]
    fn wire_round_trip_all_schemes() {
        let mut signers = [
            Signer::new(SigScheme::Hmac, [1u8; 32], 0),
            Signer::new(SigScheme::LamportOts, [2u8; 32], 0),
            Signer::new(SigScheme::MerkleMss, [3u8; 32], 2),
        ];
        for s in &mut signers {
            let vk = s.verify_key(4);
            let sig = s.sign(b"round-trip").unwrap();
            let mut wire = Vec::new();
            sig.write_wire(&mut wire);
            let (decoded, used) = Signature::read_wire(&wire).expect("decodes");
            assert_eq!(used, wire.len(), "{}: full frame consumed", s.scheme());
            assert!(verify(&vk, b"round-trip", &decoded), "{}", s.scheme());
            // Re-encoding is byte-identical.
            let mut wire2 = Vec::new();
            decoded.write_wire(&mut wire2);
            assert_eq!(wire, wire2, "{}: stable re-encode", s.scheme());
        }
    }

    #[test]
    fn wire_round_trip_batch() {
        let mut s = Signer::new(SigScheme::MerkleMss, [4u8; 32], 2);
        let vk = s.verify_key(0);
        let msgs: Vec<&[u8]> = vec![b"a", b"bb", b"ccc"];
        let sigs = s.sign_batch(&msgs).unwrap();
        for (msg, sig) in msgs.iter().zip(&sigs) {
            let mut wire = Vec::new();
            sig.write_wire(&mut wire);
            let (decoded, used) = Signature::read_wire(&wire).expect("decodes");
            assert_eq!(used, wire.len());
            assert!(verify(&vk, msg, &decoded));
        }
    }

    #[test]
    fn wire_decode_rejects_garbage_without_panicking() {
        assert!(Signature::read_wire(&[]).is_none());
        assert!(Signature::read_wire(&[9]).is_none(), "unknown tag");
        assert!(Signature::read_wire(&[0, 1, 2]).is_none(), "truncated hmac");
        // Hostile proof depth must be rejected, not allocated.
        let mut evil = vec![3u8]; // batch tag
        evil.extend_from_slice(&u64::MAX.to_be_bytes()); // proof index
        evil.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd sibling count
        assert!(Signature::read_wire(&evil).is_none());
        // Truncations of a valid frame never panic and never decode.
        let mut s = Signer::new(SigScheme::Hmac, [5u8; 32], 0);
        let mut wire = Vec::new();
        s.sign(b"m").unwrap().write_wire(&mut wire);
        for cut in 0..wire.len() {
            assert!(Signature::read_wire(&wire[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn key_ids_distinct_across_schemes_and_seeds() {
        let h1 = Signer::new(SigScheme::Hmac, [1u8; 32], 0).verify_key(0);
        let h2 = Signer::new(SigScheme::Hmac, [2u8; 32], 0).verify_key(0);
        let l1 = Signer::new(SigScheme::LamportOts, [1u8; 32], 0).verify_key(2);
        let m1 = Signer::new(SigScheme::MerkleMss, [1u8; 32], 2).verify_key(0);
        let ids = [h1.key_id(), h2.key_id(), l1.key_id(), m1.key_id()];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j], "{i} vs {j}");
            }
        }
    }
}
