//! Pluggable signing backends for attestation evidence.
//!
//! Fig. 3's caption says evidence-handling is "tuned to balance
//! performance and security"; this module is the tuning knob for the
//! signing axis. Three backends with very different cost/size/security
//! profiles share one interface:
//!
//! * [`SigScheme::Hmac`] — symmetric, 32-byte tags, cheapest; models a
//!   shared-key deployment where the appraiser also holds the key.
//! * [`SigScheme::LamportOts`] — one derived key per signature, public
//!   verification, 8 KiB signatures; models a hardware OTS unit whose
//!   epoch keys are pre-registered with the appraiser.
//! * [`SigScheme::MerkleMss`] — long-lived device identity: one 32-byte
//!   root verifies many signatures via authentication paths.
//!
//! The ablation experiments E7/E11 (DESIGN.md §4) sweep these backends.

use crate::digest::Digest;
use crate::hmac::{ct_eq, hmac_sha256, HmacKeySchedule};
use crate::lamport::{lamport_verify, LamportPublicKey, LamportSecretKey, LamportSignature};
use crate::merkle::{merkle_verify, MerkleSignature, MerkleSigner, MssError};
use std::fmt;

/// Which signing backend a device uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SigScheme {
    /// HMAC-SHA-256 with a key shared with the appraiser.
    Hmac,
    /// Per-message Lamport one-time signatures (key derived per epoch,
    /// epoch public keys pre-registered with verifiers).
    LamportOts,
    /// Merkle many-time signatures under one long-lived root.
    MerkleMss,
}

impl SigScheme {
    /// All backends, for parameter sweeps.
    pub const ALL: [SigScheme; 3] = [SigScheme::Hmac, SigScheme::LamportOts, SigScheme::MerkleMss];
}

impl fmt::Display for SigScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigScheme::Hmac => write!(f, "hmac"),
            SigScheme::LamportOts => write!(f, "lamport-ots"),
            SigScheme::MerkleMss => write!(f, "merkle-mss"),
        }
    }
}

/// A signature value from any backend.
#[derive(Clone)]
pub enum Signature {
    /// 32-byte HMAC tag.
    Hmac([u8; 32]),
    /// Lamport signature plus the index of the derived epoch key used.
    Lamport {
        /// Epoch/index of the derived one-time key.
        index: u64,
        /// The one-time signature.
        sig: LamportSignature,
    },
    /// Merkle many-time signature.
    Merkle(Box<MerkleSignature>),
}

impl Signature {
    /// Bytes this signature occupies on the wire — the quantity the
    /// overhead experiments track.
    pub fn wire_size(&self) -> usize {
        match self {
            Signature::Hmac(_) => 32,
            Signature::Lamport { .. } => 8 + LamportSignature::SIZE,
            Signature::Merkle(m) => m.wire_size(),
        }
    }

    /// The scheme this signature belongs to.
    pub fn scheme(&self) -> SigScheme {
        match self {
            Signature::Hmac(_) => SigScheme::Hmac,
            Signature::Lamport { .. } => SigScheme::LamportOts,
            Signature::Merkle(_) => SigScheme::MerkleMss,
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}, {}B)", self.scheme(), self.wire_size())
    }
}

/// A signing identity owned by one device/principal.
pub struct Signer {
    scheme: SigScheme,
    /// Secret seed: HMAC key, or Lamport/Merkle derivation seed.
    seed: [u8; 32],
    /// Next Lamport epoch index (LamportOts only).
    next_epoch: u64,
    /// Merkle signer state (MerkleMss only).
    mss: Option<MerkleSigner>,
    /// Precomputed HMAC key schedule (Hmac only): the key is fixed for
    /// the signer's lifetime, so the ipad/opad compressions are paid
    /// once here instead of on every signed record.
    hmac_ks: Option<HmacKeySchedule>,
}

/// The verification-side key material, safe to hand to appraisers.
///
/// For `LamportOts` the registered material is the list of pre-committed
/// epoch public keys. This trades registry size for simplicity — a real
/// deployment would register fingerprints and have the signer disclose
/// keys in-band; the *security argument is identical* (the appraiser pins
/// exactly the same key bits either way), so the simulation keeps the
/// simpler form and accounts wire size via [`Signature::wire_size`].
#[derive(Clone)]
pub enum VerifyKey {
    /// HMAC shares the secret.
    Hmac([u8; 32]),
    /// Pre-committed epoch public keys, index = epoch.
    Lamport(Vec<LamportPublicKey>),
    /// Merkle root of the device identity tree.
    Merkle(Digest),
}

impl VerifyKey {
    /// A compact digest identifying this key (usable as a key ID).
    pub fn key_id(&self) -> Digest {
        match self {
            VerifyKey::Hmac(k) => Digest::of_parts(&[b"hmac-key-id", k]),
            VerifyKey::Lamport(keys) => {
                let mut acc = Digest::of(b"lamport-key-id");
                for k in keys {
                    acc = acc.chain(&k.fingerprint());
                }
                acc
            }
            VerifyKey::Merkle(root) => Digest::of_parts(&[b"merkle-key-id", root.as_bytes()]),
        }
    }
}

/// Errors from signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignError {
    /// One-time/many-time key supply exhausted.
    KeysExhausted,
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::KeysExhausted => write!(f, "signing keys exhausted"),
        }
    }
}

impl std::error::Error for SignError {}

impl From<MssError> for SignError {
    fn from(_: MssError) -> Self {
        SignError::KeysExhausted
    }
}

impl Signer {
    /// Create a signer. `mss_height` controls the Merkle tree size for
    /// [`SigScheme::MerkleMss`] (2^height signatures); ignored otherwise.
    pub fn new(scheme: SigScheme, seed: [u8; 32], mss_height: u32) -> Signer {
        let mss = match scheme {
            SigScheme::MerkleMss => Some(MerkleSigner::new(seed, mss_height)),
            _ => None,
        };
        let hmac_ks = match scheme {
            SigScheme::Hmac => Some(HmacKeySchedule::new(&seed)),
            _ => None,
        };
        Signer {
            scheme,
            seed,
            next_epoch: 0,
            mss,
            hmac_ks,
        }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> SigScheme {
        self.scheme
    }

    /// Produce the verification key to register with appraisers.
    ///
    /// `epochs` bounds how many Lamport epoch keys are pre-committed
    /// (ignored for the other schemes). Signatures past that epoch will
    /// not verify until the key is re-registered.
    pub fn verify_key(&self, epochs: u64) -> VerifyKey {
        match self.scheme {
            SigScheme::Hmac => VerifyKey::Hmac(self.seed),
            SigScheme::LamportOts => VerifyKey::Lamport(
                (0..epochs)
                    .map(|i| LamportSecretKey::derive(&self.seed, i).1)
                    .collect(),
            ),
            SigScheme::MerkleMss => VerifyKey::Merkle(
                self.mss
                    .as_ref()
                    .expect("MerkleMss signer has mss state")
                    .public_root(),
            ),
        }
    }

    /// Sign a message.
    pub fn sign(&mut self, msg: &[u8]) -> Result<Signature, SignError> {
        match self.scheme {
            SigScheme::Hmac => {
                let ks = self.hmac_ks.as_ref().expect("Hmac signer has key schedule");
                Ok(Signature::Hmac(ks.mac(msg)))
            }
            SigScheme::LamportOts => {
                let index = self.next_epoch;
                self.next_epoch += 1;
                let (sk, _) = LamportSecretKey::derive(&self.seed, index);
                Ok(Signature::Lamport {
                    index,
                    sig: sk.sign(msg),
                })
            }
            SigScheme::MerkleMss => {
                let mss = self.mss.as_mut().expect("MerkleMss signer has mss state");
                Ok(Signature::Merkle(Box::new(mss.sign(msg)?)))
            }
        }
    }

    /// Remaining signatures before key exhaustion (`None` = unlimited).
    pub fn remaining(&self) -> Option<usize> {
        self.mss.as_ref().map(|m| m.remaining())
    }
}

/// Verify a signature against a registered verification key.
pub fn verify(key: &VerifyKey, msg: &[u8], sig: &Signature) -> bool {
    match (key, sig) {
        (VerifyKey::Hmac(k), Signature::Hmac(tag)) => ct_eq(&hmac_sha256(k, msg), tag),
        (VerifyKey::Lamport(keys), Signature::Lamport { index, sig }) => keys
            .get(*index as usize)
            .is_some_and(|pk| lamport_verify(pk, msg, sig)),
        (VerifyKey::Merkle(root), Signature::Merkle(m)) => merkle_verify(root, msg, m),
        _ => false, // scheme mismatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_round_trip() {
        let mut s = Signer::new(SigScheme::Hmac, [5u8; 32], 0);
        let vk = s.verify_key(0);
        let sig = s.sign(b"msg").unwrap();
        assert!(verify(&vk, b"msg", &sig));
        assert!(!verify(&vk, b"other", &sig));
    }

    #[test]
    fn hmac_wrong_key_rejected() {
        let mut s = Signer::new(SigScheme::Hmac, [5u8; 32], 0);
        let other = Signer::new(SigScheme::Hmac, [6u8; 32], 0);
        let sig = s.sign(b"msg").unwrap();
        assert!(!verify(&other.verify_key(0), b"msg", &sig));
    }

    #[test]
    fn lamport_round_trip() {
        let mut s = Signer::new(SigScheme::LamportOts, [7u8; 32], 0);
        let vk = s.verify_key(4);
        for i in 0..4 {
            let m = format!("epoch {i}");
            let sig = s.sign(m.as_bytes()).unwrap();
            assert!(verify(&vk, m.as_bytes(), &sig));
            assert!(!verify(&vk, b"tampered", &sig));
        }
    }

    #[test]
    fn lamport_epoch_advances() {
        let mut s = Signer::new(SigScheme::LamportOts, [7u8; 32], 0);
        let a = s.sign(b"one").unwrap();
        let b = s.sign(b"two").unwrap();
        let (Signature::Lamport { index: ia, .. }, Signature::Lamport { index: ib, .. }) = (&a, &b)
        else {
            panic!()
        };
        assert_eq!((*ia, *ib), (0, 1));
    }

    #[test]
    fn lamport_uncommitted_epoch_rejected() {
        let mut s = Signer::new(SigScheme::LamportOts, [7u8; 32], 0);
        let vk = s.verify_key(1); // only epoch 0 committed
        s.sign(b"zero").unwrap();
        let sig = s.sign(b"one").unwrap(); // epoch 1, not committed
        assert!(!verify(&vk, b"one", &sig));
    }

    #[test]
    fn merkle_round_trip_and_exhaustion() {
        let mut s = Signer::new(SigScheme::MerkleMss, [8u8; 32], 2);
        let vk = s.verify_key(0);
        for i in 0..4 {
            let m = format!("m{i}");
            let sig = s.sign(m.as_bytes()).unwrap();
            assert!(verify(&vk, m.as_bytes(), &sig));
        }
        assert_eq!(s.sign(b"m4").unwrap_err(), SignError::KeysExhausted);
        assert_eq!(s.remaining(), Some(0));
    }

    #[test]
    fn scheme_mismatch_rejected() {
        let mut hmac = Signer::new(SigScheme::Hmac, [1u8; 32], 0);
        let mut mss = Signer::new(SigScheme::MerkleMss, [1u8; 32], 2);
        let hmac_sig = hmac.sign(b"m").unwrap();
        let mss_sig = mss.sign(b"m").unwrap();
        assert!(!verify(&mss.verify_key(0), b"m", &hmac_sig));
        assert!(!verify(&hmac.verify_key(0), b"m", &mss_sig));
    }

    #[test]
    fn wire_sizes_ordered_as_expected() {
        let mut h = Signer::new(SigScheme::Hmac, [1u8; 32], 0);
        let mut l = Signer::new(SigScheme::LamportOts, [1u8; 32], 0);
        let mut m = Signer::new(SigScheme::MerkleMss, [1u8; 32], 3);
        let sh = h.sign(b"x").unwrap().wire_size();
        let sl = l.sign(b"x").unwrap().wire_size();
        let sm = m.sign(b"x").unwrap().wire_size();
        assert!(sh < sl, "hmac ({sh}) < lamport ({sl})");
        assert!(sl < sm, "lamport ({sl}) < merkle ({sm})");
    }

    #[test]
    fn key_ids_distinct_across_schemes_and_seeds() {
        let h1 = Signer::new(SigScheme::Hmac, [1u8; 32], 0).verify_key(0);
        let h2 = Signer::new(SigScheme::Hmac, [2u8; 32], 0).verify_key(0);
        let l1 = Signer::new(SigScheme::LamportOts, [1u8; 32], 0).verify_key(2);
        let m1 = Signer::new(SigScheme::MerkleMss, [1u8; 32], 2).verify_key(0);
        let ids = [h1.key_id(), h2.key_id(), l1.key_id(), m1.key_id()];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j], "{i} vs {j}");
            }
        }
    }
}
