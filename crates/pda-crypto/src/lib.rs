//! # pda-crypto
//!
//! From-scratch cryptographic substrate for the programmable-dataplane
//! remote-attestation stack (`pda`). Models the *trusted evidence-
//! producing hardware components* of the paper's threat model (§3): the
//! primitives a root of trust would provide in silicon — measurement
//! hashing, keyed MACs, digital signatures, nonce freshness — implemented
//! as auditable software.
//!
//! ## Modules
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (NIST-vector tested).
//! * [`hmac`] — HMAC-SHA-256 (RFC 4231-vector tested) + constant-time eq.
//! * [`digest`] — 32-byte [`digest::Digest`] newtype with chaining.
//! * [`lamport`] — Lamport one-time signatures.
//! * [`merkle`] — Merkle trees, membership proofs, and a many-time
//!   signature scheme over Lamport leaves.
//! * [`sig`] — pluggable signing backends (HMAC / Lamport / Merkle-MSS)
//!   behind one [`sig::Signer`]/[`sig::verify`] interface.
//! * [`batch`] — batch-amortized signing: one root signature over a
//!   Merkle commitment of N messages, per-leaf inclusion proofs.
//! * [`nonce`] — nonces and replay windows.
//! * [`keyreg`] — principal→key registry with operator pseudonyms.
//!
//! ## Why hash-based signatures?
//!
//! The offered dependency set has no crypto crates, and TPM/crypto
//! bindings were flagged immature for this target. Hash-based schemes
//! (Lamport, Merkle-MSS) are real public-key signatures whose security
//! reduces to SHA-256 preimage resistance, need no bignum arithmetic, and
//! have the same protocol-level shape (register verification key; sign;
//! anyone verifies) as the ECDSA/RSA a production root of trust would
//! use. See DESIGN.md §1.

pub mod batch;
pub mod digest;
pub mod hmac;
pub mod keyreg;
pub mod lamport;
pub mod merkle;
pub mod nonce;
pub mod sha256;
pub mod sig;

pub use batch::{sign_batch, BatchCommit, BatchLeaf};
pub use digest::{hex_encode, Digest};
pub use keyreg::{KeyRegistry, PrincipalId, RegistryError};
pub use nonce::{Nonce, ReplayWindow};
pub use sig::{SigScheme, SignError, Signature, Signer, VerifyKey};
