//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is the measurement/hash primitive for the whole attestation stack:
//! program digests, evidence hash-chains (Copland's `#` operator), HMAC,
//! and the hash-based signature schemes are all built on it.
//!
//! The implementation is a straightforward, allocation-free rendition of
//! the FIPS 180-4 specification and is validated against the NIST
//! short-message test vectors in the unit tests below.

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use pda_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let d = h.finalize();
/// assert_eq!(
///     hex(&d),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(b: &[u8]) -> String {
///     b.iter().map(|x| format!("{x:02x}")).collect()
/// }
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length suffix in padding).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

/// Compression state captured at a 64-byte block boundary.
///
/// A midstate is the complete hash state after absorbing some
/// block-aligned prefix. Resuming from it with [`Sha256::from_midstate`]
/// skips re-hashing that prefix entirely — the basis for precomputed
/// HMAC key schedules ([`crate::hmac::HmacKeySchedule`]), where the
/// fixed ipad/opad blocks are compressed once per key instead of once
/// per message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Midstate {
    state: [u32; 8],
    /// Bytes absorbed to reach this state; always a multiple of 64.
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Fill a partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }

        // Stash the remainder.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian message length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual: appending length must not double-count into self.len,
        // but at this point the length suffix no longer matters.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Export the compression state, valid only at a block boundary
    /// (no buffered partial block). Returns `None` mid-block, since the
    /// buffered bytes are not part of the compressed state.
    pub fn midstate(&self) -> Option<Midstate> {
        if self.buf_len == 0 {
            Some(Midstate {
                state: self.state,
                len: self.len,
            })
        } else {
            None
        }
    }

    /// Resume hashing from a previously exported [`Midstate`], as if the
    /// original block-aligned prefix had just been absorbed.
    pub fn from_midstate(m: Midstate) -> Sha256 {
        Sha256 {
            state: m.state,
            len: m.len,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hash the concatenation of several byte slices without allocating.
    pub fn digest_parts(parts: &[&[u8]]) -> [u8; 32] {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Number of independent messages the wide digest paths
    /// ([`digest_many`], [`digest_many_from`]) process per compression
    /// pass. Eight 32-bit lanes fill one 256-bit vector register, which
    /// is what the structure-of-arrays layout below is shaped for.
    pub const LANES: usize = 8;

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

// ---------------------------------------------------------------------
// Multi-message block layout: L independent messages per compression
// pass. The hash-based signature schemes hash hundreds of *independent*
// short messages per operation (512 preimages per Lamport key, one leaf
// per batch entry), where the scalar schedule leaves 7/8 of a vector
// register idle. The structure-of-arrays compressor below carries one
// message per 32-bit lane — every round operation is a straight-line
// elementwise loop over `[u32; L]`, which the autovectorizer lowers to
// vector code without any explicit SIMD (the workspace forbids
// `unsafe`). Digests are bit-identical to [`Sha256::digest`].
// ---------------------------------------------------------------------

/// One compression pass over `L` independent 64-byte blocks, carried in
/// structure-of-arrays form: `state[word][lane]`.
fn compress_multi<const L: usize>(state: &mut [[u32; L]; 8], blocks: &[&[u8]; L]) {
    let mut w = [[0u32; L]; 64];
    for t in 0..16 {
        for l in 0..L {
            let b = &blocks[l][t * 4..t * 4 + 4];
            w[t][l] = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        }
    }
    for t in 16..64 {
        let (prev, cur) = w.split_at_mut(t);
        for (l, out) in cur[0].iter_mut().enumerate() {
            let x = prev[t - 15][l];
            let y = prev[t - 2][l];
            let s0 = x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3);
            let s1 = y.rotate_right(17) ^ y.rotate_right(19) ^ (y >> 10);
            *out = prev[t - 16][l]
                .wrapping_add(s0)
                .wrapping_add(prev[t - 7][l])
                .wrapping_add(s1);
        }
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for l in 0..L {
            let big_s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            t1[l] = h[l]
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t][l]);
            let big_s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = big_s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for l in 0..L {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..L {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }

    let sum = [a, b, c, d, e, f, g, h];
    for (wrd, add) in state.iter_mut().zip(sum) {
        for l in 0..L {
            wrd[l] = wrd[l].wrapping_add(add[l]);
        }
    }
}

/// Hash `L` independent messages in one multi-lane pass.
///
/// Equal-length messages share every compression (the fast path the
/// signature schemes hit: all preimages, images, and Merkle leaves of
/// one operation have one size); mixed lengths fall back to the scalar
/// hasher per lane. Either way each output equals
/// [`Sha256::digest`] of the corresponding input.
pub fn digest_many<const L: usize>(msgs: [&[u8]; L]) -> [[u8; 32]; L] {
    digest_many_from(Midstate { state: H0, len: 0 }, msgs)
}

/// [`digest_many`] resuming every lane from the same block-aligned
/// [`Midstate`] — the multi-lane analogue of [`Sha256::from_midstate`].
/// This is what lets HMAC-heavy callers (Lamport key derivation) batch
/// the per-message compressions while the key-block compressions stay
/// precomputed.
pub fn digest_many_from<const L: usize>(start: Midstate, msgs: [&[u8]; L]) -> [[u8; 32]; L] {
    let mut out = [[0u8; 32]; L];
    if L == 0 {
        return out;
    }
    let n = msgs[0].len();
    if msgs.iter().any(|m| m.len() != n) {
        for (o, m) in out.iter_mut().zip(msgs) {
            let mut h = Sha256::from_midstate(start);
            h.update(m);
            *o = h.finalize();
        }
        return out;
    }

    let mut state = [[0u32; L]; 8];
    for (word, lanes) in state.iter_mut().enumerate() {
        *lanes = [start.state[word]; L];
    }

    // Whole blocks straight from the inputs.
    let full = n / 64;
    for blk in 0..full {
        let blocks: [&[u8]; L] = std::array::from_fn(|l| &msgs[l][blk * 64..blk * 64 + 64]);
        compress_multi(&mut state, &blocks);
    }

    // Padded tail: identical layout in every lane since lengths match.
    let rem = n % 64;
    let tail_blocks = if rem < 56 { 1 } else { 2 };
    let bit_len = (start.len + n as u64).wrapping_mul(8);
    let mut tails = [[0u8; 128]; L];
    for (tail, msg) in tails.iter_mut().zip(msgs) {
        tail[..rem].copy_from_slice(&msg[full * 64..]);
        tail[rem] = 0x80;
        tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    }
    for blk in 0..tail_blocks {
        let blocks: [&[u8]; L] = std::array::from_fn(|l| &tails[l][blk * 64..blk * 64 + 64]);
        compress_multi(&mut state, &blocks);
    }

    for (word, lanes) in state.iter().enumerate() {
        for l in 0..L {
            out[l][word * 4..word * 4 + 4].copy_from_slice(&lanes[l].to_be_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 180-4 / CAVP short-message vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_message() {
        let m = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha256::digest(m)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let m = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&m)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = (0u8..=255).cycle().take(10_000).collect::<Vec<_>>();
        let oneshot = Sha256::digest(&data);
        // Feed in irregular chunk sizes to exercise buffering.
        for chunk in [1usize, 3, 7, 63, 64, 65, 127, 1000] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn digest_parts_equals_concat() {
        let a = b"hello ";
        let b = b"world";
        assert_eq!(
            Sha256::digest_parts(&[a, b]),
            Sha256::digest(b"hello world")
        );
    }

    #[test]
    fn midstate_resume_matches_straight_hash() {
        let data = (0u8..=255).cycle().take(4096).collect::<Vec<_>>();
        let oneshot = Sha256::digest(&data);
        // Split at every block boundary: export + resume must be lossless.
        for split in (0..=4096).step_by(64) {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            let m = h.midstate().expect("block-aligned prefix has a midstate");
            let mut resumed = Sha256::from_midstate(m);
            resumed.update(&data[split..]);
            assert_eq!(resumed.finalize(), oneshot, "split {split}");
        }
    }

    #[test]
    fn midstate_unavailable_mid_block() {
        let mut h = Sha256::new();
        h.update(b"short");
        assert_eq!(h.midstate(), None);
        h.update(&[0u8; 59]); // pad to exactly one block
        assert!(h.midstate().is_some());
    }

    #[test]
    fn boundary_lengths() {
        // Message lengths around the padding boundary (55/56/57 and 63/64/65)
        // are the classic off-by-one spots for padding bugs. Compare digests
        // for distinctness and stability under incremental feeding.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let m = vec![0xa5u8; len];
            let d1 = Sha256::digest(&m);
            let mut h = Sha256::new();
            for byte in &m {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn digest_many_matches_scalar_across_lengths() {
        // The same padding-boundary gauntlet, through the multi-lane path.
        for len in [
            0usize, 1, 3, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 200,
        ] {
            let msgs_owned: Vec<Vec<u8>> =
                (0..8u8).map(|l| vec![l.wrapping_mul(37); len]).collect();
            let msgs: [&[u8]; 8] = std::array::from_fn(|l| msgs_owned[l].as_slice());
            let wide = digest_many(msgs);
            for l in 0..8 {
                assert_eq!(wide[l], Sha256::digest(msgs[l]), "len {len} lane {l}");
            }
        }
    }

    #[test]
    fn digest_many_mixed_lengths_fall_back() {
        let msgs_owned: Vec<Vec<u8>> = (0..4usize).map(|l| vec![0x5au8; l * 31]).collect();
        let msgs: [&[u8]; 4] = std::array::from_fn(|l| msgs_owned[l].as_slice());
        let wide = digest_many(msgs);
        for l in 0..4 {
            assert_eq!(wide[l], Sha256::digest(msgs[l]), "lane {l}");
        }
    }

    #[test]
    fn digest_many_from_matches_resumed_scalar() {
        let prefix = vec![0xc3u8; 128]; // block-aligned
        let mut h = Sha256::new();
        h.update(&prefix);
        let mid = h.midstate().expect("aligned");
        for len in [0usize, 16, 32, 55, 56, 64, 100] {
            let msgs_owned: Vec<Vec<u8>> = (0..8u8).map(|l| vec![l ^ 0x41; len]).collect();
            let msgs: [&[u8]; 8] = std::array::from_fn(|l| msgs_owned[l].as_slice());
            let wide = digest_many_from(mid, msgs);
            for l in 0..8 {
                let mut s = Sha256::from_midstate(mid);
                s.update(msgs[l]);
                assert_eq!(wide[l], s.finalize(), "len {len} lane {l}");
            }
        }
    }
}
