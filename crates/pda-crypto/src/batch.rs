//! Batch-amortized evidence signing.
//!
//! The paper bounds evidence generation at "at most, per hop and per
//! packet" (§5.2) — but a hash-based signature per packet means ~8 KB
//! of Lamport reveal and a full key derivation *each time*. This module
//! amortizes that: commit N evidence leaves under one Merkle root, sign
//! the **root** once with the device's [`Signer`], and hand each leaf a
//! [`Signature::Batch`] carrying its inclusion proof plus a shared
//! reference to the root signature. Verification recomputes the leaf's
//! path to the root and then checks the root signature under the same
//! [`crate::sig::VerifyKey`] — so registries, replay windows, and
//! chained composition are untouched; only the per-leaf cost changes
//! from one signing operation to `1/N`th of one.

use crate::digest::Digest;
use crate::merkle::{MerkleProof, MerkleTree};
use crate::sig::{SignError, Signature, Signer};
use std::sync::Arc;

/// The per-batch commitment every leaf signature shares: the Merkle
/// root over the batch's messages and the one real signature over it.
#[derive(Clone, Debug)]
pub struct BatchCommit {
    /// Root of the tree whose leaves are the batched messages.
    pub root: Digest,
    /// Number of leaves committed (the amortization denominator).
    pub len: u32,
    /// The underlying scheme's signature over `root.as_bytes()`.
    pub root_sig: Signature,
}

/// One leaf's share of a batch signature: its inclusion proof plus the
/// shared commitment. Cloning is cheap — the ~8 KB root signature lives
/// once behind the [`Arc`], not per leaf.
#[derive(Clone, Debug)]
pub struct BatchLeaf {
    /// Membership proof of the signed message under [`BatchCommit::root`].
    pub proof: MerkleProof,
    /// The shared root commitment and signature.
    pub commit: Arc<BatchCommit>,
}

/// Sign `msgs` as one batch: one underlying signing operation, one
/// [`Signature::Batch`] per message (in input order).
///
/// The root signature is produced by `signer` exactly as a plain
/// [`Signer::sign`] over the root bytes would be, so key consumption
/// (Lamport epochs, MSS leaves) advances by **one** per batch rather
/// than one per message. Returns an empty vector for an empty batch
/// without consuming any key material.
pub fn sign_batch(signer: &mut Signer, msgs: &[&[u8]]) -> Result<Vec<Signature>, SignError> {
    if msgs.is_empty() {
        return Ok(Vec::new());
    }
    let tree = MerkleTree::build(msgs);
    let root_sig = signer.sign(tree.root().as_bytes())?;
    let commit = Arc::new(BatchCommit {
        root: tree.root(),
        len: msgs.len() as u32,
        root_sig,
    });
    Ok((0..msgs.len())
        .map(|i| {
            Signature::Batch(BatchLeaf {
                proof: tree.prove(i).expect("i < len implies provable"),
                commit: Arc::clone(&commit),
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::{verify, SigScheme};

    fn msgs(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("evidence {i}").into_bytes())
            .collect()
    }

    #[test]
    fn batch_verifies_under_each_scheme() {
        for scheme in SigScheme::ALL {
            let mut s = Signer::new(scheme, [3u8; 32], 4);
            let vk = s.verify_key(4);
            let owned = msgs(5);
            let refs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
            let sigs = sign_batch(&mut s, &refs).unwrap();
            assert_eq!(sigs.len(), 5);
            for (m, sig) in owned.iter().zip(&sigs) {
                assert!(verify(&vk, m, sig), "{scheme}");
                assert!(!verify(&vk, b"tampered", sig), "{scheme}");
            }
        }
    }

    #[test]
    fn batch_consumes_one_key_per_batch() {
        let mut s = Signer::new(SigScheme::MerkleMss, [4u8; 32], 2); // 4 keys
        let owned = msgs(64);
        let refs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
        for _ in 0..4 {
            sign_batch(&mut s, &refs).unwrap();
        }
        assert_eq!(s.remaining(), Some(0));
        assert!(matches!(
            sign_batch(&mut s, &refs),
            Err(SignError::KeysExhausted)
        ));
    }

    #[test]
    fn leaf_proof_not_transferable() {
        let mut s = Signer::new(SigScheme::Hmac, [5u8; 32], 0);
        let vk = s.verify_key(0);
        let owned = msgs(3);
        let refs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
        let sigs = sign_batch(&mut s, &refs).unwrap();
        // Leaf 0's signature must not verify leaf 1's message.
        assert!(!verify(&vk, &owned[1], &sigs[0]));
    }

    #[test]
    fn batch_under_wrong_key_rejected() {
        let mut s = Signer::new(SigScheme::Hmac, [6u8; 32], 0);
        let other = Signer::new(SigScheme::Hmac, [7u8; 32], 0);
        let owned = msgs(2);
        let refs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
        let sigs = sign_batch(&mut s, &refs).unwrap();
        assert!(!verify(&other.verify_key(0), &owned[0], &sigs[0]));
    }

    #[test]
    fn nested_batch_rejected() {
        // A batch whose root signature is itself a batch signature could
        // chain amortization indefinitely; the verifier refuses.
        let mut s = Signer::new(SigScheme::Hmac, [8u8; 32], 0);
        let vk = s.verify_key(0);
        let owned = msgs(2);
        let refs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
        let inner = sign_batch(&mut s, &refs).unwrap();
        let tree = MerkleTree::build(&[&owned[0]]);
        let forged = Signature::Batch(BatchLeaf {
            proof: tree.prove(0).unwrap(),
            commit: Arc::new(BatchCommit {
                root: tree.root(),
                len: 1,
                root_sig: inner[0].clone(),
            }),
        });
        assert!(!verify(&vk, &owned[0], &forged));
    }

    #[test]
    fn empty_batch_is_free() {
        let mut s = Signer::new(SigScheme::MerkleMss, [9u8; 32], 1);
        assert!(sign_batch(&mut s, &[]).unwrap().is_empty());
        assert_eq!(s.remaining(), Some(2));
    }

    #[test]
    fn single_leaf_batch_verifies() {
        let mut s = Signer::new(SigScheme::LamportOts, [10u8; 32], 0);
        let vk = s.verify_key(1);
        let sigs = sign_batch(&mut s, &[b"only"]).unwrap();
        assert!(verify(&vk, b"only", &sigs[0]));
    }

    #[test]
    fn batch_wire_size_amortizes() {
        let mut s = Signer::new(SigScheme::LamportOts, [11u8; 32], 0);
        let owned = msgs(32);
        let refs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
        let batched = sign_batch(&mut s, &refs).unwrap();
        let mut plain = Signer::new(SigScheme::LamportOts, [11u8; 32], 0);
        let plain_size = plain.sign(&owned[0]).unwrap().wire_size();
        // Per-leaf share must come in well under a standalone signature.
        assert!(batched[0].wire_size() * 8 < plain_size);
    }
}
