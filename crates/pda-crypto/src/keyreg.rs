//! Key registry: maps principal identities to verification keys.
//!
//! Appraisers hold a registry binding each attesting device/process to
//! its registered [`VerifyKey`]. The registry also implements the paper's
//! *pseudonym* feature (§2, footnotes 1-2): "instead of revealing their
//! actual serial number, switches could be assigned a per-user pseudonym
//! by the operator", liftable "by an auditor's request or court order".

use crate::digest::Digest;
use crate::sig::{verify, Signature, VerifyKey};
use std::collections::HashMap;
use std::fmt;

/// A principal identity (device serial, process name, place name).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub String);

impl PrincipalId {
    /// Construct from anything string-like.
    pub fn new(s: impl Into<String>) -> PrincipalId {
        PrincipalId(s.into())
    }
}

impl fmt::Debug for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal({})", self.0)
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PrincipalId {
    fn from(s: &str) -> Self {
        PrincipalId(s.to_string())
    }
}

/// Error from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No key registered for the principal.
    UnknownPrincipal(PrincipalId),
    /// Pseudonym does not resolve.
    UnknownPseudonym(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPrincipal(p) => write!(f, "no key registered for {p}"),
            RegistryError::UnknownPseudonym(s) => write!(f, "pseudonym {s} does not resolve"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Registry of verification keys and pseudonyms.
#[derive(Clone, Default)]
pub struct KeyRegistry {
    keys: HashMap<PrincipalId, VerifyKey>,
    /// pseudonym -> real principal (the "liftable" mapping held by the
    /// operator; appraisers without audit authority never see it).
    pseudonyms: HashMap<String, PrincipalId>,
}

impl fmt::Debug for KeyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KeyRegistry({} keys, {} pseudonyms)",
            self.keys.len(),
            self.pseudonyms.len()
        )
    }
}

impl KeyRegistry {
    /// Empty registry.
    pub fn new() -> KeyRegistry {
        KeyRegistry::default()
    }

    /// Register (or replace) the key for a principal.
    pub fn register(&mut self, who: PrincipalId, key: VerifyKey) {
        self.keys.insert(who, key);
    }

    /// Fetch a principal's key.
    pub fn key_of(&self, who: &PrincipalId) -> Result<&VerifyKey, RegistryError> {
        self.keys
            .get(who)
            .ok_or_else(|| RegistryError::UnknownPrincipal(who.clone()))
    }

    /// Verify `sig` over `msg` as produced by `who`.
    pub fn verify_as(
        &self,
        who: &PrincipalId,
        msg: &[u8],
        sig: &Signature,
    ) -> Result<bool, RegistryError> {
        Ok(verify(self.key_of(who)?, msg, sig))
    }

    /// Is a key registered for `who`?
    pub fn contains(&self, who: &PrincipalId) -> bool {
        self.keys.contains_key(who)
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Assign a deterministic per-user pseudonym to a principal.
    ///
    /// The pseudonym is `H(user-context || principal)` truncated to hex,
    /// so different users see different, unlinkable names for the same
    /// switch, while the operator can regenerate and hence resolve them.
    pub fn assign_pseudonym(&mut self, user_context: &str, who: &PrincipalId) -> String {
        let d = Digest::of_parts(&[b"pseudonym", user_context.as_bytes(), who.0.as_bytes()]);
        let name = format!("pseud-{}", d.short());
        self.pseudonyms.insert(name.clone(), who.clone());
        name
    }

    /// Lift a pseudonym back to the real principal — the auditor/court
    /// path from the paper's footnote 2.
    pub fn lift_pseudonym(&self, pseud: &str) -> Result<&PrincipalId, RegistryError> {
        self.pseudonyms
            .get(pseud)
            .ok_or_else(|| RegistryError::UnknownPseudonym(pseud.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::{SigScheme, Signer};

    #[test]
    fn register_and_verify() {
        let mut reg = KeyRegistry::new();
        let mut signer = Signer::new(SigScheme::Hmac, [3u8; 32], 0);
        let sw1: PrincipalId = "switch-1".into();
        reg.register(sw1.clone(), signer.verify_key(0));
        let sig = signer.sign(b"claim").unwrap();
        assert_eq!(reg.verify_as(&sw1, b"claim", &sig), Ok(true));
        assert_eq!(reg.verify_as(&sw1, b"forged", &sig), Ok(false));
    }

    #[test]
    fn unknown_principal_is_error() {
        let reg = KeyRegistry::new();
        let mut signer = Signer::new(SigScheme::Hmac, [3u8; 32], 0);
        let sig = signer.sign(b"claim").unwrap();
        assert!(matches!(
            reg.verify_as(&"ghost".into(), b"claim", &sig),
            Err(RegistryError::UnknownPrincipal(_))
        ));
    }

    #[test]
    fn reregistration_replaces_key() {
        let mut reg = KeyRegistry::new();
        let mut old = Signer::new(SigScheme::Hmac, [1u8; 32], 0);
        let mut new = Signer::new(SigScheme::Hmac, [2u8; 32], 0);
        let id: PrincipalId = "sw".into();
        reg.register(id.clone(), old.verify_key(0));
        reg.register(id.clone(), new.verify_key(0));
        let old_sig = old.sign(b"m").unwrap();
        let new_sig = new.sign(b"m").unwrap();
        assert_eq!(reg.verify_as(&id, b"m", &old_sig), Ok(false));
        assert_eq!(reg.verify_as(&id, b"m", &new_sig), Ok(true));
    }

    #[test]
    fn pseudonyms_resolve_and_differ_per_user() {
        let mut reg = KeyRegistry::new();
        let id: PrincipalId = "switch-47".into();
        let p_alice = reg.assign_pseudonym("alice", &id);
        let p_bob = reg.assign_pseudonym("bob", &id);
        assert_ne!(p_alice, p_bob, "pseudonyms must be unlinkable per user");
        assert_eq!(reg.lift_pseudonym(&p_alice).unwrap(), &id);
        assert_eq!(reg.lift_pseudonym(&p_bob).unwrap(), &id);
        assert!(reg.lift_pseudonym("pseud-00000000").is_err());
    }

    #[test]
    fn pseudonyms_deterministic() {
        let mut reg = KeyRegistry::new();
        let id: PrincipalId = "switch-47".into();
        let p1 = reg.assign_pseudonym("alice", &id);
        let p2 = reg.assign_pseudonym("alice", &id);
        assert_eq!(p1, p2);
    }
}
