//! Fault-plane integration tests: same-seed runs are byte-identical,
//! retransmits make out-of-band appraisal loss-tolerant, and the
//! appraiser survives duplicated / reordered evidence deliveries.

use pda_crypto::nonce::Nonce;
use pda_netsim::{linear_path, ControlRetryPolicy, EvidenceMode, FaultPlan, LinkFaults, SimStats};
use pda_pera::config::{PeraConfig, Sampling};
use pda_pera::{assemble_chain, verify_chain, AdmissionPolicy};
use pda_telemetry::Telemetry;
use proptest::prelude::*;

/// Everything observable about one run, for whole-run comparison.
#[derive(Debug, PartialEq)]
struct RunTrace {
    stats: SimStats,
    faults: pda_netsim::FaultStats,
    now: u64,
    /// (time, node, payload length) per delivery, in delivery order.
    deliveries: Vec<(u64, usize, usize)>,
    /// Chain digests of evidence collected at the appraiser, in order.
    collected: Vec<[u8; 32]>,
    audit_jsonl: String,
}

/// A moderately hostile run: data loss + duplication + jitter on every
/// link, one switch outage window, 10% control-channel loss with the
/// default retransmit budget, enforcement at the last switch.
fn faulted_run(seed: u64) -> RunTrace {
    let cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let mut lp = linear_path(3, &cfg, &[]);
    let tel = Telemetry::collecting();
    lp.sim.attach_telemetry(tel.clone());
    lp.sim
        .install_enforcement(lp.switches[2], AdmissionPolicy::default());
    lp.sim.install_faults(
        FaultPlan::new(seed)
            .with_default_link(LinkFaults {
                loss: 0.05,
                duplicate: 0.05,
                corrupt: 0.02,
                reorder_jitter_ns: 500,
            })
            .with_switch_down(lp.switches[1], 40_000, 60_000)
            .with_control_loss(0.10)
            .with_control_retry(ControlRetryPolicy::default()),
    );
    let appraiser = lp.appraiser;
    for i in 0..40u64 {
        let mode = if i % 2 == 0 {
            EvidenceMode::InBand
        } else {
            EvidenceMode::OutOfBand { appraiser }
        };
        lp.send_attested(Nonce(i + 1), mode, b"payload!");
    }
    RunTrace {
        stats: lp.sim.stats,
        faults: lp.sim.faults.as_ref().unwrap().stats,
        now: lp.sim.now,
        deliveries: lp
            .sim
            .deliveries
            .iter()
            .map(|d| (d.time, d.node, d.packet.bytes.len()))
            .collect(),
        collected: lp
            .sim
            .evidence_at(appraiser)
            .iter()
            .map(|r| r.chain.0)
            .collect(),
        audit_jsonl: tel.audit_log().unwrap().to_jsonl(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole determinism guarantee: two runs of the same faulted
    /// scenario under the same seed agree on *everything* — SimStats,
    /// FaultStats, every delivery, the evidence collected at the
    /// appraiser, and the full audit log.
    #[test]
    fn same_seed_faulted_runs_are_identical(seed in any::<u64>()) {
        let a = faulted_run(seed);
        let b = faulted_run(seed);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn the_fault_plane_actually_perturbs() {
    let t = faulted_run(7);
    let f = t.faults;
    assert!(f.data_lost > 0, "5% loss over 40 multi-hop packets");
    assert!(f.data_duplicated > 0);
    assert!(f.switch_down_drops > 0, "outage window saw traffic");
    assert!(
        f.control_lost > 0 && f.control_retransmits > 0,
        "lossy control channel retransmits: {f:?}"
    );
}

#[test]
fn control_retries_keep_out_of_band_appraisal_complete() {
    // 3 PERA hops × 200 out-of-band packets = 600 evidence pushes over
    // a control channel losing 10% of messages. With the default
    // retransmit budget, ≥99% of records still reach the appraiser;
    // fire-and-forget loses roughly the loss rate.
    let run = |retry: ControlRetryPolicy| {
        let cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
        let mut lp = linear_path(3, &cfg, &[]);
        lp.sim.install_faults(
            FaultPlan::new(99)
                .with_control_loss(0.10)
                .with_control_retry(retry),
        );
        let appraiser = lp.appraiser;
        for i in 0..200u64 {
            lp.send_attested(
                Nonce(i + 1),
                EvidenceMode::OutOfBand { appraiser },
                b"payload!",
            );
        }
        lp.sim.evidence_at(appraiser).len() as f64 / 600.0
    };
    let with_retry = run(ControlRetryPolicy::default());
    let without = run(ControlRetryPolicy::none());
    assert!(
        with_retry >= 0.99,
        "completeness with retries: {with_retry}"
    );
    assert!(
        without < 0.97,
        "no-retry baseline should sit near the loss rate: {without}"
    );
}

#[test]
fn duplicated_deliveries_do_not_confuse_the_appraiser() {
    // Heavy duplication on every data link: the appraiser receives the
    // same hop evidence several times. assemble_chain dedups by chain
    // digest and restores path order, so the chain still verifies.
    let cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let mut lp = linear_path(3, &cfg, &[]);
    lp.sim
        .install_faults(FaultPlan::new(3).with_default_link(LinkFaults {
            duplicate: 0.8,
            ..LinkFaults::default()
        }));
    let appraiser = lp.appraiser;
    lp.send_attested(Nonce(1), EvidenceMode::OutOfBand { appraiser }, b"payload!");
    let raw = lp.sim.evidence_at(appraiser).to_vec();
    assert!(raw.len() > 3, "duplication produced extra deliveries");
    let (ordered, orphans) = assemble_chain(raw);
    assert_eq!(ordered.len(), 3, "one record per hop after dedup");
    assert!(orphans.is_empty());
    assert_eq!(
        verify_chain(&ordered, &lp.sim.registry, Nonce(1), true),
        Ok(())
    );
}

#[test]
fn reordered_deliveries_reassemble_in_path_order() {
    // Clean run, then adversarially scramble + duplicate what the
    // appraiser stored: assemble_chain must restore sw1→sw2→sw3.
    let cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let mut lp = linear_path(3, &cfg, &[]);
    let appraiser = lp.appraiser;
    lp.send_attested(Nonce(9), EvidenceMode::OutOfBand { appraiser }, b"payload!");
    let mut scrambled = lp.sim.evidence_at(appraiser).to_vec();
    scrambled.reverse();
    scrambled.push(scrambled[0].clone());
    scrambled.push(scrambled[2].clone());
    let (ordered, orphans) = assemble_chain(scrambled);
    assert!(orphans.is_empty());
    let names: Vec<_> = ordered.iter().map(|r| r.switch.as_str()).collect();
    assert_eq!(names, vec!["sw1", "sw2", "sw3"]);
    assert_eq!(
        verify_chain(&ordered, &lp.sim.registry, Nonce(9), true),
        Ok(())
    );
}

#[test]
fn quiet_plan_is_byte_identical_to_no_plan() {
    // Installing an all-quiet fault plane must not change a single
    // observable relative to a fault-free simulator: the no-fault fast
    // path draws nothing from the RNG.
    let run = |faults: bool| {
        let cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
        let mut lp = linear_path(3, &cfg, &[]);
        if faults {
            lp.sim.install_faults(FaultPlan::new(1234));
        }
        for i in 0..10u64 {
            lp.send_attested(Nonce(i + 1), EvidenceMode::InBand, b"payload!");
        }
        (
            lp.sim.stats,
            lp.sim.now,
            lp.sim
                .deliveries
                .iter()
                .map(|d| (d.time, d.node, d.packet.bytes.clone()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(false), run(true));
}
