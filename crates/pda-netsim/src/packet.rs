//! Simulated packets: raw wire bytes plus the structured view of the
//! PDA options header (attestation request + in-band evidence chain).
//!
//! On a real wire the request and the accumulated evidence live inside
//! the §5.2 options header; the simulator keeps them structured for
//! inspectability and accounts their encoded size when computing
//! bytes-on-wire.

use pda_crypto::digest::Digest;
use pda_crypto::nonce::Nonce;
use pda_pera::evidence::EvidenceRecord;

/// The attestation state riding on a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceMode {
    /// Evidence accumulates in the packet (Fig. 2's in-band variant).
    InBand,
    /// Each hop sends its evidence straight to the appraiser node
    /// (Fig. 2's out-of-band variant).
    OutOfBand {
        /// The collector node's id.
        appraiser: usize,
    },
}

/// Attestation request + accumulated evidence.
#[derive(Clone, Debug)]
pub struct AttestState {
    /// The relying party's nonce.
    pub nonce: Nonce,
    /// In-band or out-of-band evidence flow.
    pub mode: EvidenceMode,
    /// In-band: records accumulated so far, path order.
    pub chain: Vec<EvidenceRecord>,
    /// Chain linkage value (last record's chain, or ZERO).
    pub prev: Digest,
}

impl AttestState {
    /// Fresh request.
    pub fn new(nonce: Nonce, mode: EvidenceMode) -> AttestState {
        AttestState {
            nonce,
            mode,
            chain: Vec::new(),
            prev: Digest::ZERO,
        }
    }

    /// Append a record produced by a hop.
    pub fn push(&mut self, record: EvidenceRecord) {
        self.prev = record.chain;
        if matches!(self.mode, EvidenceMode::InBand) {
            self.chain.push(record);
        }
    }

    /// Bytes the in-band evidence adds to the packet.
    pub fn in_band_bytes(&self) -> usize {
        self.chain.iter().map(|r| r.wire_size()).sum()
    }
}

/// A packet in flight. `Clone` exists for the fault plane's
/// duplication fault (two copies of one transmission on the wire).
#[derive(Clone, Debug)]
pub struct SimPacket {
    /// Raw packet bytes (headers + payload).
    pub bytes: Vec<u8>,
    /// Attestation state (None = ordinary traffic).
    pub attest: Option<AttestState>,
    /// Source node (set at injection; for tracing).
    pub src: usize,
    /// Hop count so far (TTL-style safety net).
    pub hops: u32,
}

impl SimPacket {
    /// An ordinary data packet.
    pub fn plain(bytes: Vec<u8>, src: usize) -> SimPacket {
        SimPacket {
            bytes,
            attest: None,
            src,
            hops: 0,
        }
    }

    /// A packet carrying an attestation request.
    pub fn attested(bytes: Vec<u8>, src: usize, nonce: Nonce, mode: EvidenceMode) -> SimPacket {
        SimPacket {
            bytes,
            attest: Some(AttestState::new(nonce, mode)),
            src,
            hops: 0,
        }
    }

    /// Total bytes on the wire: raw bytes + options-header preamble +
    /// in-band evidence.
    pub fn wire_bytes(&self) -> usize {
        let overhead = match &self.attest {
            None => 0,
            Some(a) => 16 + a.in_band_bytes(), // 16 = fixed PDA preamble
        };
        self.bytes.len() + overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_crypto::sig::{SigScheme, Signer};
    use pda_pera::config::DetailLevel;

    fn record(name: &str, prev: Digest) -> EvidenceRecord {
        let mut s = Signer::new(SigScheme::Hmac, [1u8; 32], 0);
        EvidenceRecord::create(
            name,
            vec![(DetailLevel::Program, Digest::of(name.as_bytes()))],
            Nonce(1),
            prev,
            &mut s,
        )
        .unwrap()
    }

    #[test]
    fn plain_packet_has_no_overhead() {
        let p = SimPacket::plain(vec![0u8; 100], 0);
        assert_eq!(p.wire_bytes(), 100);
    }

    #[test]
    fn in_band_chain_grows_wire_size() {
        let mut p = SimPacket::attested(vec![0u8; 100], 0, Nonce(1), EvidenceMode::InBand);
        assert_eq!(p.wire_bytes(), 116);
        let r1 = record("sw1", Digest::ZERO);
        let c1 = r1.chain;
        p.attest.as_mut().unwrap().push(r1);
        assert!(p.wire_bytes() > 116);
        assert_eq!(p.attest.as_ref().unwrap().prev, c1);
        assert_eq!(p.attest.as_ref().unwrap().chain.len(), 1);
    }

    #[test]
    fn out_of_band_keeps_packet_small_but_tracks_prev() {
        let mut p = SimPacket::attested(
            vec![0u8; 100],
            0,
            Nonce(1),
            EvidenceMode::OutOfBand { appraiser: 9 },
        );
        let r1 = record("sw1", Digest::ZERO);
        let c1 = r1.chain;
        p.attest.as_mut().unwrap().push(r1);
        assert_eq!(p.wire_bytes(), 116, "no in-band growth");
        assert_eq!(p.attest.as_ref().unwrap().prev, c1, "chain still linked");
        assert!(p.attest.as_ref().unwrap().chain.is_empty());
    }
}
