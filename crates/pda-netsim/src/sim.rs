//! The discrete-event simulation engine.
//!
//! Deterministic: events are ordered by (time, sequence number), link
//! latencies are fixed, and all device behaviour is deterministic, so a
//! given scenario always produces byte-identical results — a property
//! the integration tests assert.

use crate::faults::{FaultPlan, FaultPlane, TxFate};
use crate::packet::{EvidenceMode, SimPacket};
use crate::topology::{DeviceKind, NodeId, SimTime, Topology};
use pda_crypto::keyreg::{KeyRegistry, PrincipalId};
use pda_pera::evidence::EvidenceRecord;
use pda_pera::verify_unit::{AdmissionPolicy, VerifyUnit};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Latency of the out-of-band control channel from any switch to the
/// appraiser (a separate management network in a real deployment).
pub const CONTROL_LATENCY: SimTime = 10_000;

/// Safety net against forwarding loops.
pub const MAX_HOPS: u32 = 64;

enum EventKind {
    /// A packet arrives at `node` on `port`.
    Packet {
        node: NodeId,
        port: u64,
        packet: SimPacket,
    },
    /// An out-of-band evidence record arrives at the appraiser `node`.
    Control {
        node: NodeId,
        record: EvidenceRecord,
        bytes: usize,
    },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A packet that reached a host or appraiser.
pub struct Delivery {
    /// Arrival time.
    pub time: SimTime,
    /// Receiving node.
    pub node: NodeId,
    /// The packet, including any in-band evidence chain.
    pub packet: SimPacket,
}

/// Aggregate simulation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered to hosts/appraisers.
    pub delivered: u64,
    /// Packets dropped (pipeline drop, unwired port, or hop limit).
    pub dropped: u64,
    /// Total data-plane bytes × hops (wire-byte metric).
    pub wire_bytes: u64,
    /// Out-of-band control messages sent.
    pub control_messages: u64,
    /// Out-of-band control bytes sent.
    pub control_bytes: u64,
    /// Packets rejected by in-dataplane enforcement (verify units).
    pub enforcement_drops: u64,
}

/// The simulator.
pub struct Simulator {
    /// The network.
    pub topo: Topology,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Current simulated time.
    pub now: SimTime,
    /// Packets that reached hosts.
    pub deliveries: Vec<Delivery>,
    /// Out-of-band evidence collected per appraiser node.
    pub collected: HashMap<NodeId, Vec<EvidenceRecord>>,
    /// Verification keys of every PERA switch in the topology.
    pub registry: KeyRegistry,
    /// In-dataplane enforcement points (Fig. 3's verify unit), by node.
    pub enforcement: HashMap<NodeId, VerifyUnit>,
    /// Statistics.
    pub stats: SimStats,
    /// The fault-injection plane, when a [`FaultPlan`] is installed.
    /// `None` (the default) is the seed's perfect-world behaviour.
    pub faults: Option<FaultPlane>,
    /// Telemetry handle: [`run`](Self::run) publishes [`SimStats`] as
    /// `netsim.*` gauges and times the drain. Disabled by default;
    /// attach with [`attach_telemetry`](Self::attach_telemetry).
    pub telemetry: pda_telemetry::Telemetry,
}

impl Simulator {
    /// Build a simulator over a topology, registering every PERA
    /// switch's verification key.
    pub fn new(topo: Topology) -> Simulator {
        let mut registry = KeyRegistry::new();
        for node in &topo.nodes {
            if let DeviceKind::Pera(sw) = &node.kind {
                registry.register(PrincipalId::new(node.name.clone()), sw.verify_key(64));
            }
        }
        Simulator {
            topo,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            deliveries: Vec::new(),
            collected: HashMap::new(),
            registry: KeyRegistry::new(),
            enforcement: HashMap::new(),
            stats: SimStats::default(),
            faults: None,
            telemetry: pda_telemetry::Telemetry::off(),
        }
        .with_registry(registry)
    }

    /// Install a fault plan; faulted behaviour is a deterministic
    /// function of the plan (including its seed) and the injection
    /// sequence. Installing replaces any previous plane, resetting its
    /// PRNG and counters.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultPlane::new(plan));
    }

    /// Attach a telemetry handle to the simulation *and* to every PERA
    /// switch in the topology, so one handle observes the whole stack:
    /// per-stage pipeline spans, `pera.*` counters and audit events
    /// from the switches, and `netsim.*` scenario gauges from the sim.
    pub fn attach_telemetry(&mut self, tel: pda_telemetry::Telemetry) {
        for node in &mut self.topo.nodes {
            if let DeviceKind::Pera(sw) = &mut node.kind {
                sw.set_telemetry(tel.clone());
            }
        }
        for (node, unit) in self.enforcement.iter_mut() {
            unit.set_telemetry(tel.clone(), self.topo.nodes[*node].name.clone());
        }
        self.telemetry = tel;
    }

    fn with_registry(mut self, r: KeyRegistry) -> Simulator {
        self.registry = r;
        self
    }

    /// Install an in-dataplane enforcement point (Fig. 3's verify unit)
    /// at a PERA switch: arriving attested packets have their in-band
    /// chains checked against `policy`; failing packets are dropped
    /// before forwarding (the UC3 authorization gate in the network).
    pub fn install_enforcement(&mut self, node: NodeId, policy: AdmissionPolicy) {
        assert!(
            matches!(self.topo.nodes[node].kind, DeviceKind::Pera(_)),
            "enforcement requires a PERA device"
        );
        let mut unit = VerifyUnit::new(self.registry.clone(), policy);
        unit.set_telemetry(self.telemetry.clone(), self.topo.nodes[node].name.clone());
        self.enforcement.insert(node, unit);
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Inject a packet from `host` out of its port `port` at `time`.
    pub fn inject(&mut self, time: SimTime, host: NodeId, port: u64, packet: SimPacket) {
        self.stats.injected += 1;
        self.send_over_link(host, port, time, packet);
    }

    /// Put one packet on the wire from `node` out of `egress_port` at
    /// `time`, consulting the fault plane (loss, duplication,
    /// corruption, jitter, link-down) when one is installed.
    fn send_over_link(&mut self, node: NodeId, egress_port: u64, time: SimTime, packet: SimPacket) {
        let Some(&link) = self.topo.nodes[node].ports.get(&egress_port) else {
            self.stats.dropped += 1;
            return;
        };
        let fate = match self.faults.as_mut() {
            None => TxFate::Deliver {
                extra: 0,
                duplicate_extra: None,
                corrupt: false,
            },
            Some(plane) => plane.data_fate(node, egress_port, time),
        };
        match fate {
            TxFate::LinkDown => {
                self.stats.dropped += 1;
            }
            TxFate::Lost => {
                // The transmission consumed the wire before vanishing.
                self.stats.wire_bytes += packet.wire_bytes() as u64;
                self.stats.dropped += 1;
            }
            TxFate::Deliver {
                extra,
                duplicate_extra,
                corrupt,
            } => {
                let mut packet = packet;
                if corrupt {
                    if let Some(plane) = self.faults.as_mut() {
                        plane.corrupt_bytes(&mut packet.bytes);
                    }
                }
                let bytes = packet.wire_bytes();
                if let Some(dup_extra) = duplicate_extra {
                    self.stats.wire_bytes += bytes as u64;
                    self.push(
                        time + link.delay(bytes) + dup_extra,
                        EventKind::Packet {
                            node: link.peer,
                            port: link.peer_port,
                            packet: packet.clone(),
                        },
                    );
                }
                self.stats.wire_bytes += bytes as u64;
                self.push(
                    time + link.delay(bytes) + extra,
                    EventKind::Packet {
                        node: link.peer,
                        port: link.peer_port,
                        packet,
                    },
                );
            }
        }
    }

    /// Run until the event queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        let span = self.telemetry.span("netsim.run");
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now = ev.time;
            match ev.kind {
                EventKind::Packet { node, port, packet } => self.handle_packet(node, port, packet),
                EventKind::Control {
                    node,
                    record,
                    bytes,
                } => {
                    self.stats.control_messages += 1;
                    self.stats.control_bytes += bytes as u64;
                    self.collected.entry(node).or_default().push(record);
                }
            }
        }
        drop(span);
        self.publish_stats();
        self.now
    }

    /// Publish the current [`SimStats`] snapshot as `netsim.*` gauges
    /// (idempotent: gauges are set, not accumulated, so interleaved
    /// `run` calls always reflect the latest totals).
    pub fn publish_stats(&self) {
        let Some(reg) = self.telemetry.registry() else {
            return;
        };
        let set = |name: &str, v: u64| reg.gauge(name).set(v as i64);
        set("netsim.injected", self.stats.injected);
        set("netsim.delivered", self.stats.delivered);
        set("netsim.dropped", self.stats.dropped);
        set("netsim.wire_bytes", self.stats.wire_bytes);
        set("netsim.control_messages", self.stats.control_messages);
        set("netsim.control_bytes", self.stats.control_bytes);
        set("netsim.enforcement_drops", self.stats.enforcement_drops);
        set("netsim.now", self.now);
        if let Some(plane) = &self.faults {
            let f = plane.stats;
            set("netsim.faults.data_lost", f.data_lost);
            set("netsim.faults.data_duplicated", f.data_duplicated);
            set("netsim.faults.data_corrupted", f.data_corrupted);
            set("netsim.faults.link_down_drops", f.link_down_drops);
            set("netsim.faults.switch_down_drops", f.switch_down_drops);
            set("netsim.faults.control_lost", f.control_lost);
            set("netsim.faults.control_retransmits", f.control_retransmits);
            set("netsim.faults.control_gave_up", f.control_gave_up);
        }
    }

    fn handle_packet(&mut self, node: NodeId, port: u64, mut packet: SimPacket) {
        packet.hops += 1;
        if packet.hops > MAX_HOPS {
            self.stats.dropped += 1;
            return;
        }
        // A switch inside one of its outage windows drops everything.
        if !matches!(
            self.topo.nodes[node].kind,
            DeviceKind::Host | DeviceKind::Appraiser
        ) {
            if let Some(plane) = self.faults.as_mut() {
                if plane.switch_down_drop(node, self.now) {
                    self.stats.dropped += 1;
                    return;
                }
            }
        }
        // Split-borrow: temporarily take the device out to mutate it
        // while scheduling through &mut self.
        match &mut self.topo.nodes[node].kind {
            DeviceKind::Host | DeviceKind::Appraiser => {
                self.stats.delivered += 1;
                self.deliveries.push(Delivery {
                    time: self.now,
                    node,
                    packet,
                });
            }
            DeviceKind::Pera(sw) => {
                // Ingress enforcement: Fig. 3 case (A), inspect in-band
                // evidence before match+action. An unattested packet has
                // no chain and no nonce; the policy decides its fate.
                if let Some(unit) = self.enforcement.get_mut(&node) {
                    let verdict = match &packet.attest {
                        Some(a) => unit.check(Some(&a.chain), Some(a.nonce)),
                        None => unit.check(None, None),
                    };
                    if !verdict.admits() {
                        self.stats.dropped += 1;
                        self.stats.enforcement_drops += 1;
                        return;
                    }
                }
                let attestation = packet.attest.as_ref().map(|a| (a.nonce, a.prev));
                let out = match sw.process_packet(&packet.bytes, port, attestation) {
                    Ok(o) => o,
                    Err(_) => {
                        self.stats.dropped += 1;
                        return;
                    }
                };
                let evidence = out.evidence;
                let Some(egress_bytes) = out.forward.packet else {
                    self.stats.dropped += 1;
                    return;
                };
                let egress_port = out.forward.egress_port;
                if let (Some(record), Some(attest)) = (evidence, packet.attest.as_mut()) {
                    match attest.mode {
                        EvidenceMode::InBand => attest.push(record),
                        EvidenceMode::OutOfBand { appraiser } => {
                            let bytes = record.wire_size();
                            attest.push(record.clone());
                            // The control channel may lose the push;
                            // the fault plane resolves the retransmit
                            // timeline (timeout + exponential backoff)
                            // at send time.
                            let retrans_before = self
                                .faults
                                .as_ref()
                                .map_or(0, |p| p.stats.control_retransmits);
                            let deliver_at = match self.faults.as_mut() {
                                None => Some(self.now + CONTROL_LATENCY),
                                Some(plane) => {
                                    plane.control_delivery_time(self.now, CONTROL_LATENCY)
                                }
                            };
                            if self.telemetry.enabled() {
                                let retransmits = self
                                    .faults
                                    .as_ref()
                                    .map_or(0, |p| p.stats.control_retransmits)
                                    - retrans_before;
                                let name = match (deliver_at.is_some(), retransmits) {
                                    (false, _) => "channel.gave_up",
                                    (true, 0) => "channel.send",
                                    (true, _) => "channel.retry",
                                };
                                // Span index from the chained digest: unique
                                // per record yet identical on replay, so the
                                // channel span is deterministic.
                                let chain8 = u64::from_le_bytes(
                                    record.chain.as_bytes()[..8]
                                        .try_into()
                                        .expect("digest holds at least 8 bytes"),
                                );
                                let ctx = record.trace_ctx().child("channel", chain8);
                                let mut fields = ctx.fields();
                                fields.push((
                                    "switch".to_string(),
                                    self.topo.nodes[node].name.clone().into(),
                                ));
                                fields.push(("retransmits".to_string(), retransmits.into()));
                                fields.push(("delivered".to_string(), deliver_at.is_some().into()));
                                fields.push(("bytes".to_string(), bytes.into()));
                                self.telemetry.event(name, fields);
                            }
                            if let Some(t) = deliver_at {
                                self.push(
                                    t,
                                    EventKind::Control {
                                        node: appraiser,
                                        record,
                                        bytes,
                                    },
                                );
                            }
                        }
                    }
                }
                packet.bytes = egress_bytes;
                self.forward(node, egress_port, packet);
            }
            DeviceKind::Legacy { program, regs } => {
                let out = match program.process(&packet.bytes, port, regs) {
                    Ok(o) => o,
                    Err(_) => {
                        self.stats.dropped += 1;
                        return;
                    }
                };
                let Some(egress_bytes) = out.packet else {
                    self.stats.dropped += 1;
                    return;
                };
                packet.bytes = egress_bytes;
                self.forward(node, out.egress_port, packet);
            }
        }
    }

    fn forward(&mut self, node: NodeId, egress_port: u64, packet: SimPacket) {
        self.send_over_link(node, egress_port, self.now, packet);
    }

    /// Convenience: evidence records collected at an appraiser node.
    pub fn evidence_at(&self, node: NodeId) -> &[EvidenceRecord] {
        self.collected.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::packet::SimPacket;
    use pda_dataplane::programs;

    /// A two-switch forwarding loop: the hop limit must kill the packet
    /// instead of spinning the event queue forever.
    #[test]
    fn forwarding_loops_hit_the_hop_limit() {
        let fwd = || programs::forwarding(&[(0, 0, 1)]);
        let mut topo = Topology::new();
        let h = topo.add("h", DeviceKind::Host);
        let a = topo.add(
            "a",
            DeviceKind::Legacy {
                regs: fwd().make_registers(),
                program: fwd(),
            },
        );
        let b = topo.add(
            "b",
            DeviceKind::Legacy {
                regs: fwd().make_registers(),
                program: fwd(),
            },
        );
        topo.link(h, 1, a, 0, 10);
        topo.link(a, 1, b, 0, 10);
        topo.link(b, 1, a, 2, 10);
        // a forwards out port 1 → b; b forwards out port 1 → a (port 2
        // side); a receives on port 2 and forwards out port 1 again: loop.
        let mut sim = Simulator::new(topo);
        let pkt = SimPacket::plain(crate::scenarios::test_packet(1, 2, 53, b"loop!!!!"), h);
        sim.inject(0, h, 1, pkt);
        sim.run();
        assert_eq!(sim.stats.dropped, 1, "loop guard dropped the packet");
        assert_eq!(sim.stats.delivered, 0);
    }

    /// One telemetry handle attached to the sim observes the whole
    /// stack: scenario gauges from the sim, `pera.*` counters and audit
    /// events from the switches, per-stage spans from the pipeline.
    #[test]
    fn attached_telemetry_observes_whole_stack() {
        use crate::packet::EvidenceMode;
        use pda_pera::config::PeraConfig;

        let tel = pda_telemetry::Telemetry::collecting();
        let mut lp = crate::scenarios::linear_path(2, &PeraConfig::default(), &[]);
        lp.sim.attach_telemetry(tel.clone());
        for n in 0..4u64 {
            lp.send_attested(
                pda_crypto::nonce::Nonce(n),
                EvidenceMode::InBand,
                b"telem!!!",
            );
        }
        let reg = tel.registry().unwrap();
        assert_eq!(reg.gauge("netsim.injected").get(), 4);
        assert_eq!(reg.gauge("netsim.delivered").get(), 4);
        assert_eq!(
            reg.counter("pera.packets").get(),
            8,
            "4 packets × 2 PERA hops"
        );
        assert!(reg.histogram("pipeline.parse.ns").count() >= 8);
        assert!(reg.histogram("netsim.run.ns").count() >= 4);
        assert!(
            !tel.audit_log().unwrap().is_empty(),
            "switch attestations must audit through the sim's handle"
        );
    }

    /// Injecting out an unwired port is a clean drop.
    #[test]
    fn unwired_port_drops() {
        let mut topo = Topology::new();
        let h = topo.add("h", DeviceKind::Host);
        let mut sim = Simulator::new(topo);
        let pkt = SimPacket::plain(vec![0u8; 64], h);
        sim.inject(0, h, 9, pkt);
        assert_eq!(sim.stats.dropped, 1);
        sim.run();
    }
}
