//! The UC3 DDoS-mitigation scenario, run *inside* the simulator: an
//! enforcement switch in front of the victim drops traffic lacking
//! valid path evidence while legitimate attested flows pass.
//!
//! Topology:
//!
//! ```text
//!   legit-client ── sw1 ── sw2 ──┐
//!                                ├── edge (enforcement) ── victim
//!   botnet ─────────── rogue ────┘
//! ```
//!
//! Legitimate traffic crosses two attesting PERA switches; attack
//! traffic arrives via a rogue (legacy) device that cannot produce
//! valid evidence.

use crate::packet::{EvidenceMode, SimPacket};
use crate::sim::Simulator;
use crate::topology::{DeviceKind, NodeId, Topology};
use pda_crypto::nonce::Nonce;
use pda_dataplane::programs;
use pda_pera::config::{PeraConfig, Sampling};
use pda_pera::switch::PeraSwitch;
use pda_pera::verify_unit::AdmissionPolicy;

/// The built scenario.
pub struct DdosScenario {
    /// The simulator.
    pub sim: Simulator,
    /// Legitimate client host.
    pub legit_client: NodeId,
    /// Botnet source host.
    pub botnet: NodeId,
    /// Enforcement switch.
    pub edge: NodeId,
    /// The protected victim.
    pub victim: NodeId,
}

/// Outcome counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DdosOutcome {
    /// Legitimate packets delivered to the victim.
    pub legit_delivered: u64,
    /// Attack packets delivered to the victim.
    pub attack_delivered: u64,
    /// Packets dropped by the enforcement point.
    pub enforcement_drops: u64,
}

/// Build the scenario. When `enforce` is false the edge switch forwards
/// everything (the no-mitigation baseline).
pub fn build(enforce: bool) -> DdosScenario {
    let attest_cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let fwd = || programs::forwarding(&[(0, 0, 1)]);
    let mut topo = Topology::new();

    let legit_client = topo.add("legit-client", DeviceKind::Host);
    let sw1 = topo.add(
        "sw1",
        DeviceKind::Pera(Box::new(PeraSwitch::new(
            "sw1",
            "hw1",
            fwd(),
            attest_cfg.clone(),
        ))),
    );
    let sw2 = topo.add(
        "sw2",
        DeviceKind::Pera(Box::new(PeraSwitch::new(
            "sw2",
            "hw2",
            fwd(),
            attest_cfg.clone(),
        ))),
    );
    let botnet = topo.add("botnet", DeviceKind::Host);
    let rogue = topo.add(
        "rogue",
        DeviceKind::Legacy {
            regs: fwd().make_registers(),
            program: fwd(),
        },
    );
    // Edge: a PERA switch (so it can host the verify unit).
    let edge = topo.add(
        "edge",
        DeviceKind::Pera(Box::new(PeraSwitch::new(
            "edge",
            "hw-edge",
            fwd(),
            // The edge itself doesn't add evidence in this scenario.
            PeraConfig::default().with_sampling(Sampling::PerEpoch(u64::MAX)),
        ))),
    );
    let victim = topo.add("victim", DeviceKind::Host);

    topo.link(legit_client, 1, sw1, 0, 1_000);
    topo.link(sw1, 1, sw2, 0, 1_000);
    topo.link(sw2, 1, edge, 0, 1_000);
    topo.link(botnet, 1, rogue, 0, 1_000);
    topo.link(rogue, 1, edge, 2, 1_000);
    topo.link(edge, 1, victim, 0, 1_000);

    let mut sim = Simulator::new(topo);
    if enforce {
        sim.install_enforcement(
            edge,
            AdmissionPolicy {
                min_hops: 2,
                ..AdmissionPolicy::default()
            },
        );
    }
    DdosScenario {
        sim,
        legit_client,
        botnet,
        edge,
        victim,
    }
}

impl DdosScenario {
    /// Drive `legit` attested flows and `attack` bare packets, then
    /// count what reached the victim.
    pub fn run(&mut self, legit: u64, attack: u64) -> DdosOutcome {
        for i in 0..legit {
            let bytes = crate::scenarios::test_packet(
                0x0a00_0100 + i as u32,
                0x0a00_0002,
                443,
                b"legit!!!",
            );
            let pkt = SimPacket::attested(
                bytes,
                self.legit_client,
                Nonce(1000 + i),
                EvidenceMode::InBand,
            );
            self.sim.inject(self.sim.now, self.legit_client, 1, pkt);
        }
        for i in 0..attack {
            let bytes = crate::scenarios::test_packet(
                0xc6_000000 + i as u32, // spoofed range
                0x0a00_0002,
                443,
                b"junkjunk",
            );
            let pkt = SimPacket::plain(bytes, self.botnet);
            self.sim.inject(self.sim.now, self.botnet, 1, pkt);
        }
        self.sim.run();
        let mut legit_delivered = 0;
        let mut attack_delivered = 0;
        for d in &self.sim.deliveries {
            if d.node != self.victim {
                continue;
            }
            if d.packet.attest.is_some() {
                legit_delivered += 1;
            } else {
                attack_delivered += 1;
            }
        }
        DdosOutcome {
            legit_delivered,
            attack_delivered,
            enforcement_drops: self.sim.stats.enforcement_drops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_enforcement_attack_floods_victim() {
        let mut s = build(false);
        let out = s.run(10, 100);
        assert_eq!(out.legit_delivered, 10);
        assert_eq!(out.attack_delivered, 100, "no mitigation baseline");
        assert_eq!(out.enforcement_drops, 0);
    }

    #[test]
    fn with_enforcement_attack_blocked_legit_passes() {
        let mut s = build(true);
        let out = s.run(10, 100);
        assert_eq!(out.legit_delivered, 10, "all legitimate flows pass");
        assert_eq!(out.attack_delivered, 0, "all attack traffic dropped");
        assert_eq!(out.enforcement_drops, 100);
    }

    #[test]
    fn forged_evidence_also_blocked() {
        // An attacker that marks packets as "attested" but whose chain is
        // empty (the rogue device can't sign) still gets dropped.
        let mut s = build(true);
        let bytes = crate::scenarios::test_packet(0xc6_000001, 0x0a00_0002, 443, b"fakefake");
        let pkt = SimPacket::attested(bytes, s.botnet, Nonce(1), EvidenceMode::InBand);
        s.sim.inject(0, s.botnet, 1, pkt);
        s.sim.run();
        assert_eq!(s.sim.stats.enforcement_drops, 1);
        assert!(s.sim.deliveries.iter().all(|d| d.node != s.victim));
    }

    #[test]
    fn edge_verify_stats_accumulate() {
        let mut s = build(true);
        s.run(5, 7);
        let unit = s.sim.enforcement.get(&s.edge).unwrap();
        assert_eq!(unit.stats.checked, 12);
        assert_eq!(unit.stats.admitted, 5);
        assert_eq!(unit.stats.rejected, 7);
    }
}
