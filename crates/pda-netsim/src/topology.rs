//! Network topology: nodes (hosts, PERA switches, legacy switches,
//! appliances) wired by point-to-point links with latency.

use pda_dataplane::actions::Registers;
use pda_dataplane::pipeline::DataplaneProgram;
use pda_pera::switch::PeraSwitch;
use std::collections::HashMap;

/// Node identifier (index into [`Topology::nodes`]).
pub type NodeId = usize;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// What a node is.
pub enum DeviceKind {
    /// An end host: sources and sinks packets, collects evidence.
    Host,
    /// An RA-capable programmable switch.
    Pera(Box<PeraSwitch>),
    /// A legacy (non-attesting) programmable switch — the paper's
    /// Non-attesting Element (NE, Fig. 4).
    Legacy {
        /// Its dataplane program.
        program: DataplaneProgram,
        /// Its register file.
        regs: Registers,
    },
    /// The appraiser/collector service node.
    Appraiser,
}

impl DeviceKind {
    /// Is this node RA-capable?
    pub fn supports_ra(&self) -> bool {
        matches!(self, DeviceKind::Pera(_))
    }
}

/// One direction of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Peer node.
    pub peer: NodeId,
    /// Port on the peer.
    pub peer_port: u64,
    /// Propagation latency (ns).
    pub latency: SimTime,
    /// Serialization cost in ns per byte (0 = infinite bandwidth;
    /// 8 ns/B ≈ 1 Gbit/s, 1 ns/B ≈ 8 Gbit/s).
    pub ns_per_byte: u64,
}

impl Link {
    /// Total delay for a packet of `bytes` bytes.
    pub fn delay(&self, bytes: usize) -> SimTime {
        self.latency + self.ns_per_byte * bytes as u64
    }
}

/// A node plus its wiring.
pub struct Node {
    /// Unique name.
    pub name: String,
    /// The device.
    pub kind: DeviceKind,
    /// port → outgoing link.
    pub ports: HashMap<u64, Link>,
}

/// The network graph.
#[derive(Default)]
pub struct Topology {
    /// All nodes; `NodeId` indexes here.
    pub nodes: Vec<Node>,
    names: HashMap<String, NodeId>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a node; names must be unique.
    pub fn add(&mut self, name: impl Into<String>, kind: DeviceKind) -> NodeId {
        let name = name.into();
        assert!(
            !self.names.contains_key(&name),
            "duplicate node name {name}"
        );
        let id = self.nodes.len();
        self.names.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            kind,
            ports: HashMap::new(),
        });
        id
    }

    /// Wire a bidirectional link `a.port_a ↔ b.port_b` with symmetric
    /// propagation latency and infinite bandwidth.
    pub fn link(&mut self, a: NodeId, port_a: u64, b: NodeId, port_b: u64, latency: SimTime) {
        self.link_with_bandwidth(a, port_a, b, port_b, latency, 0);
    }

    /// Wire a link with finite bandwidth: `ns_per_byte` serialization
    /// cost per byte (8 ≈ 1 Gbit/s). Larger packets — e.g. those
    /// carrying in-band evidence chains — pay proportionally more.
    pub fn link_with_bandwidth(
        &mut self,
        a: NodeId,
        port_a: u64,
        b: NodeId,
        port_b: u64,
        latency: SimTime,
        ns_per_byte: u64,
    ) {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "bad node id");
        let fwd = Link {
            peer: b,
            peer_port: port_b,
            latency,
            ns_per_byte,
        };
        let rev = Link {
            peer: a,
            peer_port: port_a,
            latency,
            ns_per_byte,
        };
        let prev = self.nodes[a].ports.insert(port_a, fwd);
        assert!(
            prev.is_none(),
            "port {port_a} of {} already wired",
            self.nodes[a].name
        );
        let prev = self.nodes[b].ports.insert(port_b, rev);
        assert!(
            prev.is_none(),
            "port {port_b} of {} already wired",
            self.nodes[b].name
        );
    }

    /// Resolve a node by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Node name.
    pub fn name_of(&self, id: NodeId) -> &str {
        &self.nodes[id].name
    }

    /// The sequence of node names along the port-following path from
    /// `start` leaving via `port`, until a node without forwarding state
    /// or a repeat (defensive cycle stop). Used to build the hybrid
    /// resolver's path view.
    pub fn trace_path(&self, start: NodeId, mut port: u64, max_hops: usize) -> Vec<NodeId> {
        let mut path = vec![start];
        let mut at = start;
        for _ in 0..max_hops {
            let Some(link) = self.nodes[at].ports.get(&port) else {
                break;
            };
            let peer = link.peer;
            if path.contains(&peer) {
                break;
            }
            path.push(peer);
            at = peer;
            // Follow the "next" convention used by the builders: transit
            // devices forward out port 1.
            port = 1;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_resolve() {
        let mut t = Topology::new();
        let a = t.add("h1", DeviceKind::Host);
        let b = t.add("h2", DeviceKind::Host);
        assert_eq!(t.by_name("h1"), Some(a));
        assert_eq!(t.by_name("h2"), Some(b));
        assert_eq!(t.by_name("nope"), None);
        assert_eq!(t.name_of(a), "h1");
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add("x", DeviceKind::Host);
        t.add("x", DeviceKind::Host);
    }

    #[test]
    fn links_are_bidirectional() {
        let mut t = Topology::new();
        let a = t.add("a", DeviceKind::Host);
        let b = t.add("b", DeviceKind::Host);
        t.link(a, 1, b, 0, 1000);
        assert_eq!(t.nodes[a].ports[&1].peer, b);
        assert_eq!(t.nodes[a].ports[&1].latency, 1000);
        assert_eq!(t.nodes[b].ports[&0].peer, a);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_a_port_rejected() {
        let mut t = Topology::new();
        let a = t.add("a", DeviceKind::Host);
        let b = t.add("b", DeviceKind::Host);
        let c = t.add("c", DeviceKind::Host);
        t.link(a, 1, b, 0, 1);
        t.link(a, 1, c, 0, 1);
    }

    #[test]
    fn trace_path_follows_port_one() {
        let mut t = Topology::new();
        let h1 = t.add("h1", DeviceKind::Host);
        let s1 = t.add("s1", DeviceKind::Host);
        let s2 = t.add("s2", DeviceKind::Host);
        let h2 = t.add("h2", DeviceKind::Host);
        t.link(h1, 1, s1, 0, 1);
        t.link(s1, 1, s2, 0, 1);
        t.link(s2, 1, h2, 0, 1);
        let path = t.trace_path(h1, 1, 10);
        assert_eq!(path, vec![h1, s1, s2, h2]);
    }

    #[test]
    fn trace_path_stops_on_cycles() {
        let mut t = Topology::new();
        let a = t.add("a", DeviceKind::Host);
        let b = t.add("b", DeviceKind::Host);
        t.link(a, 1, b, 0, 1);
        t.link(b, 1, a, 0, 1);
        let path = t.trace_path(a, 1, 10);
        assert_eq!(path, vec![a, b]);
    }
}
