//! The deterministic fault-injection plane.
//!
//! The seed simulator was a perfect-world testbed: links never lose,
//! duplicate, corrupt, or reorder packets; switches never go down; and
//! the out-of-band control channel is lossless. That leaves the paper's
//! degraded-conditions design space (UC3's "while under attack…")
//! unquantified. A [`FaultPlan`] describes per-link loss/duplication/
//! corruption probabilities, reorder jitter, administrative link-down
//! and switch-down windows, and independent loss on the out-of-band
//! control channel. The plan is *sampled* inside the event loop by a
//! [`FaultPlane`] holding a seeded PRNG, so the simulator's
//! byte-identical-per-seed determinism is preserved: same topology,
//! same injections, same `FaultPlan` (including seed) → identical
//! stats, deliveries, and audit logs. `tests/faults_det.rs` asserts
//! exactly that.
//!
//! Loss on the control channel is compensated by a timeout/retransmit
//! loop with exponential backoff ([`ControlRetryPolicy`]): each lost
//! push is re-sent after `base_timeout_ns · backoff^attempt` until the
//! retry budget is exhausted. The whole retransmit timeline is resolved
//! at send time (the simulation-standard "oracle" simplification — the
//! sender's timeout always fires after the real loss), which keeps the
//! event loop free of per-ack bookkeeping while matching the latency
//! and completeness a real ARQ would deliver.

use crate::topology::{NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Fault probabilities and jitter for one (or every) link direction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a transmission is lost in flight.
    pub loss: f64,
    /// Probability a transmission is delivered twice.
    pub duplicate: f64,
    /// Probability one payload byte is flipped in flight.
    pub corrupt: f64,
    /// Maximum extra delivery delay, sampled uniformly from
    /// `0..=reorder_jitter_ns` per copy. Jitter larger than the gap
    /// between consecutive sends reorders them.
    pub reorder_jitter_ns: SimTime,
}

impl LinkFaults {
    /// A link that only loses packets.
    pub fn lossy(loss: f64) -> LinkFaults {
        LinkFaults {
            loss,
            ..LinkFaults::default()
        }
    }

    /// Does this configuration ever perturb a transmission?
    pub fn is_quiet(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.reorder_jitter_ns == 0
    }
}

/// A half-open outage window `[from, until)` in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DownWindow {
    /// First nanosecond of the outage.
    pub from: SimTime,
    /// First nanosecond after the outage.
    pub until: SimTime,
}

impl DownWindow {
    /// Is `t` inside the outage?
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// Timeout/retransmit policy for the out-of-band control channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlRetryPolicy {
    /// Retransmissions after the first attempt (0 = fire-and-forget).
    pub max_retries: u32,
    /// Timeout before the first retransmit.
    pub base_timeout_ns: SimTime,
    /// Timeout multiplier per successive retransmit (exponential
    /// backoff; 1 = fixed interval).
    pub backoff: u32,
}

impl Default for ControlRetryPolicy {
    fn default() -> Self {
        ControlRetryPolicy {
            max_retries: 3,
            base_timeout_ns: 4 * crate::sim::CONTROL_LATENCY,
            backoff: 2,
        }
    }
}

impl ControlRetryPolicy {
    /// No retransmissions at all — the no-retry baseline for E16.
    pub fn none() -> ControlRetryPolicy {
        ControlRetryPolicy {
            max_retries: 0,
            ..ControlRetryPolicy::default()
        }
    }
}

/// A complete, declarative fault scenario. Build one with the
/// `with_*` combinators and hand it to `Simulator::install_faults`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// PRNG seed; the sole source of randomness in a faulted run.
    pub seed: u64,
    /// Faults applied to every link direction without an override.
    pub default_link: LinkFaults,
    /// Per-(sender, egress-port) overrides.
    pub link_overrides: HashMap<(NodeId, u64), LinkFaults>,
    /// Independent loss probability on the out-of-band control channel.
    pub control_loss: f64,
    /// Retransmit policy compensating `control_loss`.
    pub control_retry: ControlRetryPolicy,
    /// Administrative outages of individual link directions.
    pub link_down: HashMap<(NodeId, u64), Vec<DownWindow>>,
    /// Outages of whole switches (packets arriving during the window
    /// are dropped at the device).
    pub switch_down: HashMap<NodeId, Vec<DownWindow>>,
}

impl FaultPlan {
    /// An all-quiet plan under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_link: LinkFaults::default(),
            link_overrides: HashMap::new(),
            control_loss: 0.0,
            control_retry: ControlRetryPolicy::default(),
            link_down: HashMap::new(),
            switch_down: HashMap::new(),
        }
    }

    /// Apply `faults` to every link direction by default.
    pub fn with_default_link(mut self, faults: LinkFaults) -> FaultPlan {
        self.default_link = faults;
        self
    }

    /// Override the faults of one link direction (`node` sending out
    /// `port`).
    pub fn with_link(mut self, node: NodeId, port: u64, faults: LinkFaults) -> FaultPlan {
        self.link_overrides.insert((node, port), faults);
        self
    }

    /// Set the control-channel loss probability.
    pub fn with_control_loss(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.control_loss = p;
        self
    }

    /// Set the control-channel retransmit policy.
    pub fn with_control_retry(mut self, policy: ControlRetryPolicy) -> FaultPlan {
        self.control_retry = policy;
        self
    }

    /// Take one link direction down for `[from, until)`.
    pub fn with_link_down(
        mut self,
        node: NodeId,
        port: u64,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        self.link_down
            .entry((node, port))
            .or_default()
            .push(DownWindow { from, until });
        self
    }

    /// Take a whole switch down for `[from, until)`.
    pub fn with_switch_down(mut self, node: NodeId, from: SimTime, until: SimTime) -> FaultPlan {
        self.switch_down
            .entry(node)
            .or_default()
            .push(DownWindow { from, until });
        self
    }
}

/// What the fault plane did, as counters (mirrored to
/// `netsim.faults.*` gauges when telemetry is attached).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data-plane transmissions lost.
    pub data_lost: u64,
    /// Data-plane transmissions duplicated.
    pub data_duplicated: u64,
    /// Data-plane transmissions with a byte flipped.
    pub data_corrupted: u64,
    /// Transmissions dropped because the link was down.
    pub link_down_drops: u64,
    /// Packets dropped at a switch that was down.
    pub switch_down_drops: u64,
    /// Control-channel attempts lost (pre-retransmit).
    pub control_lost: u64,
    /// Control-channel retransmissions sent.
    pub control_retransmits: u64,
    /// Control records abandoned after exhausting the retry budget.
    pub control_gave_up: u64,
}

/// Outcome of one data-plane transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxFate {
    /// Deliver one copy (`extra` jitter), and possibly a duplicate.
    Deliver {
        /// Jitter added to the first copy's delivery time.
        extra: SimTime,
        /// Jitter of the duplicate copy, when one was spawned.
        duplicate_extra: Option<SimTime>,
        /// Whether one payload byte must be flipped.
        corrupt: bool,
    },
    /// The sending link direction is administratively down.
    LinkDown,
    /// Lost in flight.
    Lost,
}

/// The runtime fault plane: a [`FaultPlan`] plus the seeded PRNG and
/// the counters. Owned by the simulator; one per run.
#[derive(Clone, Debug)]
pub struct FaultPlane {
    /// The scenario being executed.
    pub plan: FaultPlan,
    /// What has happened so far.
    pub stats: FaultStats,
    rng: StdRng,
}

impl FaultPlane {
    /// Instantiate a plan (seeds the PRNG from `plan.seed`).
    pub fn new(plan: FaultPlan) -> FaultPlane {
        FaultPlane {
            rng: StdRng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
            plan,
        }
    }

    fn faults_for(&self, node: NodeId, port: u64) -> LinkFaults {
        self.plan
            .link_overrides
            .get(&(node, port))
            .copied()
            .unwrap_or(self.plan.default_link)
    }

    /// Decide the fate of one transmission from `node` out of `port` at
    /// `now`. Draws from the PRNG in a fixed order (loss, corruption,
    /// duplication, jitter per copy) so the decision stream is a pure
    /// function of the seed and the call sequence.
    pub fn data_fate(&mut self, node: NodeId, port: u64, now: SimTime) -> TxFate {
        if let Some(windows) = self.plan.link_down.get(&(node, port)) {
            if windows.iter().any(|w| w.contains(now)) {
                self.stats.link_down_drops += 1;
                return TxFate::LinkDown;
            }
        }
        let f = self.faults_for(node, port);
        if f.is_quiet() {
            return TxFate::Deliver {
                extra: 0,
                duplicate_extra: None,
                corrupt: false,
            };
        }
        if f.loss > 0.0 && self.rng.gen_bool(f.loss) {
            self.stats.data_lost += 1;
            return TxFate::Lost;
        }
        let corrupt = f.corrupt > 0.0 && self.rng.gen_bool(f.corrupt);
        if corrupt {
            self.stats.data_corrupted += 1;
        }
        let duplicate = f.duplicate > 0.0 && self.rng.gen_bool(f.duplicate);
        if duplicate {
            self.stats.data_duplicated += 1;
        }
        let mut jitter = || {
            if f.reorder_jitter_ns == 0 {
                0
            } else {
                self.rng.gen_range(0..=f.reorder_jitter_ns)
            }
        };
        TxFate::Deliver {
            extra: jitter(),
            duplicate_extra: duplicate.then(jitter),
            corrupt,
        }
    }

    /// Flip one byte of `bytes` in place (the corruption fault).
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let i = self.rng.gen_range(0..bytes.len());
        bytes[i] ^= 0xFF;
    }

    /// Is `node` inside one of its outage windows at `now`? Counts the
    /// drop when it is.
    pub fn switch_down_drop(&mut self, node: NodeId, now: SimTime) -> bool {
        let down = self
            .plan
            .switch_down
            .get(&node)
            .is_some_and(|ws| ws.iter().any(|w| w.contains(now)));
        if down {
            self.stats.switch_down_drops += 1;
        }
        down
    }

    /// Resolve one control-channel push sent at `now` with one-way
    /// latency `latency`: returns the delivery time of the first copy
    /// that survives loss, or `None` when the retry budget runs dry.
    pub fn control_delivery_time(&mut self, now: SimTime, latency: SimTime) -> Option<SimTime> {
        let p = self.plan.control_loss;
        if p == 0.0 {
            return Some(now + latency);
        }
        let retry = self.plan.control_retry;
        let mut send_at = now;
        let mut timeout = retry.base_timeout_ns;
        for attempt in 0..=retry.max_retries {
            if !self.rng.gen_bool(p) {
                return Some(send_at + latency);
            }
            self.stats.control_lost += 1;
            if attempt < retry.max_retries {
                self.stats.control_retransmits += 1;
                send_at += timeout;
                timeout = timeout.saturating_mul(retry.backoff as u64);
            }
        }
        self.stats.control_gave_up += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_perturbs() {
        let mut plane = FaultPlane::new(FaultPlan::new(7));
        for t in 0..100 {
            assert_eq!(
                plane.data_fate(0, 1, t),
                TxFate::Deliver {
                    extra: 0,
                    duplicate_extra: None,
                    corrupt: false
                }
            );
            assert_eq!(plane.control_delivery_time(t, 10), Some(t + 10));
            assert!(!plane.switch_down_drop(0, t));
        }
        assert_eq!(plane.stats, FaultStats::default());
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let plan = FaultPlan::new(42).with_default_link(LinkFaults {
            loss: 0.2,
            duplicate: 0.1,
            corrupt: 0.1,
            reorder_jitter_ns: 500,
        });
        let mut a = FaultPlane::new(plan.clone());
        let mut b = FaultPlane::new(plan);
        for t in 0..1000 {
            assert_eq!(a.data_fate(1, 1, t), b.data_fate(1, 1, t));
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.data_lost > 0, "p=0.2 over 1000 draws must lose");
    }

    #[test]
    fn down_windows_are_half_open() {
        let plan = FaultPlan::new(1)
            .with_link_down(3, 1, 100, 200)
            .with_switch_down(5, 50, 60);
        let mut plane = FaultPlane::new(plan);
        assert_eq!(
            plane.data_fate(3, 1, 99),
            TxFate::Deliver {
                extra: 0,
                duplicate_extra: None,
                corrupt: false
            }
        );
        assert_eq!(plane.data_fate(3, 1, 100), TxFate::LinkDown);
        assert_eq!(plane.data_fate(3, 1, 199), TxFate::LinkDown);
        assert!(!matches!(plane.data_fate(3, 1, 200), TxFate::LinkDown));
        assert!(!plane.switch_down_drop(5, 49));
        assert!(plane.switch_down_drop(5, 50));
        assert!(!plane.switch_down_drop(5, 60));
        assert_eq!(plane.stats.link_down_drops, 2);
        assert_eq!(plane.stats.switch_down_drops, 1);
    }

    #[test]
    fn control_retries_recover_most_losses() {
        // With 10% loss and 3 retries, P(all four attempts lost) = 1e-4:
        // across 10k pushes virtually everything is delivered.
        let plan = FaultPlan::new(9).with_control_loss(0.10);
        let mut plane = FaultPlane::new(plan);
        let mut delivered = 0u64;
        for i in 0..10_000u64 {
            if plane.control_delivery_time(i * 1000, 10).is_some() {
                delivered += 1;
            }
        }
        assert!(delivered >= 9_990, "delivered only {delivered}/10000");
        assert!(plane.stats.control_retransmits > 0);
        assert_eq!(
            plane.stats.control_gave_up,
            10_000 - delivered,
            "every non-delivery is an exhausted budget"
        );
    }

    #[test]
    fn no_retry_baseline_drops_at_loss_rate() {
        let plan = FaultPlan::new(9)
            .with_control_loss(0.10)
            .with_control_retry(ControlRetryPolicy::none());
        let mut plane = FaultPlane::new(plan);
        let mut delivered = 0u64;
        for i in 0..10_000u64 {
            if plane.control_delivery_time(i * 1000, 10).is_some() {
                delivered += 1;
            }
        }
        // Fire-and-forget delivers ≈ 90%.
        assert!((8_800..9_200).contains(&delivered), "{delivered}/10000");
        assert_eq!(plane.stats.control_retransmits, 0);
    }

    #[test]
    fn backoff_grows_exponentially() {
        // Force three consecutive losses, then a success, and check the
        // delivery time reflects base·(1 + backoff + backoff²) waiting.
        let retry = ControlRetryPolicy {
            max_retries: 3,
            base_timeout_ns: 100,
            backoff: 2,
        };
        // Find a seed whose first three draws at p=0.999 lose and
        // fourth succeeds is impractical; instead use p=1 with budget 3
        // to check give-up, and p=0 to check the fast path.
        let mut always = FaultPlane::new(
            FaultPlan::new(3)
                .with_control_loss(1.0)
                .with_control_retry(retry),
        );
        assert_eq!(always.control_delivery_time(0, 10), None);
        assert_eq!(always.stats.control_lost, 4, "1 try + 3 retries");
        assert_eq!(always.stats.control_retransmits, 3);
        assert_eq!(always.stats.control_gave_up, 1);
        let mut never = FaultPlane::new(FaultPlan::new(3).with_control_retry(retry));
        assert_eq!(never.control_delivery_time(50, 10), Some(60));
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let plan = FaultPlan::new(2);
        let mut plane = FaultPlane::new(plan);
        let original = vec![0xAAu8; 64];
        let mut copy = original.clone();
        plane.corrupt_bytes(&mut copy);
        let diffs = original.iter().zip(&copy).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        plane.corrupt_bytes(&mut []);
    }
}
