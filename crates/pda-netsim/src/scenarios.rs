//! Scenario builders: the topologies and traffic mixes the experiments
//! and examples run on.

use crate::packet::{EvidenceMode, SimPacket};
use crate::sim::Simulator;
use crate::topology::{DeviceKind, NodeId, Topology};
use pda_crypto::nonce::Nonce;
use pda_dataplane::parser::build_udp_packet;
use pda_dataplane::programs;
use pda_pera::config::PeraConfig;
use pda_pera::switch::PeraSwitch;

/// A linear path: `client — sw1 — sw2 — … — swN — server`, every switch
/// a PERA device running the LPM forwarder (everything routed towards
/// the server). Ports: each device receives on 0 and sends on 1.
pub struct LinearPath {
    /// The simulator.
    pub sim: Simulator,
    /// Client host id.
    pub client: NodeId,
    /// Server host id.
    pub server: NodeId,
    /// Switch ids in path order.
    pub switches: Vec<NodeId>,
    /// Appraiser node id.
    pub appraiser: NodeId,
}

/// Build a linear path of `n` PERA switches with the given config.
/// `legacy_at` lists switch indices (0-based) built as legacy
/// (non-attesting) devices instead.
pub fn linear_path(n: usize, config: &PeraConfig, legacy_at: &[usize]) -> LinearPath {
    assert!(n >= 1, "need at least one switch");
    let mut topo = Topology::new();
    let client = topo.add("client", DeviceKind::Host);
    let mut switches = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("sw{}", i + 1);
        let prog = programs::forwarding(&[(0, 0, 1)]); // route everything out port 1
        let kind = if legacy_at.contains(&i) {
            DeviceKind::Legacy {
                regs: prog.make_registers(),
                program: prog,
            }
        } else {
            DeviceKind::Pera(Box::new(PeraSwitch::new(
                name.clone(),
                format!("tofino-sim-{i}"),
                prog,
                config.clone(),
            )))
        };
        switches.push(topo.add(name, kind));
    }
    let server = topo.add("server", DeviceKind::Host);
    let appraiser = topo.add("appraiser", DeviceKind::Appraiser);

    topo.link(client, 1, switches[0], 0, 1_000);
    for w in switches.windows(2) {
        topo.link(w[0], 1, w[1], 0, 1_000);
    }
    topo.link(*switches.last().unwrap(), 1, server, 0, 1_000);

    LinearPath {
        sim: Simulator::new(topo),
        client,
        server,
        switches,
        appraiser,
    }
}

/// Build a standard test packet from `src_ip` to `dst_ip`.
pub fn test_packet(src_ip: u32, dst_ip: u32, dport: u16, payload: &[u8]) -> Vec<u8> {
    build_udp_packet(0x02, 0x01, src_ip, dst_ip, 40_000, dport, payload)
}

impl LinearPath {
    /// Send one attested packet from the client and run to quiescence.
    /// Returns the number of evidence records that reached the server
    /// in-band (or the appraiser out-of-band).
    pub fn send_attested(&mut self, nonce: Nonce, mode: EvidenceMode, payload: &[u8]) {
        let bytes = test_packet(0x0a00_0001, 0x0a00_0002, 4433, payload);
        let pkt = SimPacket::attested(bytes, self.client, nonce, mode);
        self.sim.inject(self.sim.now, self.client, 1, pkt);
        self.sim.run();
    }

    /// Send one plain packet.
    pub fn send_plain(&mut self, payload: &[u8]) {
        let bytes = test_packet(0x0a00_0001, 0x0a00_0002, 4433, payload);
        let pkt = SimPacket::plain(bytes, self.client);
        self.sim.inject(self.sim.now, self.client, 1, pkt);
        self.sim.run();
    }

    /// In-band chains delivered at the server.
    pub fn server_chains(&self) -> Vec<&crate::packet::AttestState> {
        self.sim
            .deliveries
            .iter()
            .filter(|d| d.node == self.server)
            .filter_map(|d| d.packet.attest.as_ref())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_pera::config::Sampling;
    use pda_pera::evidence::verify_chain;

    #[test]
    fn in_band_chain_grows_per_hop() {
        let mut lp = linear_path(
            4,
            &PeraConfig::default().with_sampling(Sampling::PerPacket),
            &[],
        );
        lp.send_attested(Nonce(1), EvidenceMode::InBand, b"hello!!!");
        let chains = lp.server_chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].chain.len(), 4, "one record per PERA hop");
        // The chain verifies against the simulator's registry.
        assert_eq!(
            verify_chain(&chains[0].chain, &lp.sim.registry, Nonce(1), true),
            Ok(())
        );
        // Switch names in path order.
        let names: Vec<_> = chains[0].chain.iter().map(|r| r.switch.as_str()).collect();
        assert_eq!(names, vec!["sw1", "sw2", "sw3", "sw4"]);
    }

    #[test]
    fn out_of_band_collects_at_appraiser() {
        let mut lp = linear_path(
            3,
            &PeraConfig::default().with_sampling(Sampling::PerPacket),
            &[],
        );
        let appraiser = lp.appraiser;
        lp.send_attested(Nonce(2), EvidenceMode::OutOfBand { appraiser }, b"hello!!!");
        // Packet still reaches the server, small:
        let chains = lp.server_chains();
        assert_eq!(chains.len(), 1);
        assert!(chains[0].chain.is_empty(), "no in-band growth");
        // Appraiser has all three records.
        let recs = lp.sim.evidence_at(appraiser);
        assert_eq!(recs.len(), 3);
        assert_eq!(verify_chain(recs, &lp.sim.registry, Nonce(2), true), Ok(()));
        assert_eq!(lp.sim.stats.control_messages, 3);
        assert!(lp.sim.stats.control_bytes > 0);
    }

    #[test]
    fn legacy_hops_are_skipped_in_the_chain() {
        let mut lp = linear_path(
            4,
            &PeraConfig::default().with_sampling(Sampling::PerPacket),
            &[1], // sw2 is legacy
        );
        lp.send_attested(Nonce(3), EvidenceMode::InBand, b"hello!!!");
        let chains = lp.server_chains();
        let names: Vec<_> = chains[0].chain.iter().map(|r| r.switch.as_str()).collect();
        assert_eq!(names, vec!["sw1", "sw3", "sw4"]);
        // Chain still verifies: linkage is between attesting elements.
        assert_eq!(
            verify_chain(&chains[0].chain, &lp.sim.registry, Nonce(3), true),
            Ok(())
        );
    }

    #[test]
    fn plain_traffic_flows_without_evidence() {
        let mut lp = linear_path(2, &PeraConfig::default(), &[]);
        lp.send_plain(b"ordinary");
        assert_eq!(lp.sim.stats.delivered, 1);
        assert!(lp.server_chains().is_empty());
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let mut lp = linear_path(
                3,
                &PeraConfig::default().with_sampling(Sampling::PerPacket),
                &[],
            );
            for i in 0..5 {
                lp.send_attested(Nonce(i), EvidenceMode::InBand, b"payload!");
            }
            (lp.sim.stats, lp.sim.now)
        };
        assert_eq!(run().0, run().0);
        assert_eq!(run().1, run().1);
    }

    #[test]
    fn latency_accumulates_per_hop() {
        let mut lp = linear_path(3, &PeraConfig::default(), &[]);
        lp.send_plain(b"timing!!");
        // 4 links × 1000ns.
        let t = lp.sim.deliveries[0].time;
        assert_eq!(t, 4_000);
    }
}

/// Like [`linear_path`], but links have finite bandwidth
/// (`ns_per_byte`, 8 ≈ 1 Gbit/s), so packets carrying in-band evidence
/// chains pay real serialization delay per hop.
pub fn linear_path_bw(
    n: usize,
    config: &PeraConfig,
    legacy_at: &[usize],
    ns_per_byte: u64,
) -> LinearPath {
    let mut lp = linear_path(n, config, legacy_at);
    // Rebuild the links with bandwidth. (Links are immutable once wired,
    // so patch the Link entries directly.)
    for node in &mut lp.sim.topo.nodes {
        for link in node.ports.values_mut() {
            link.ns_per_byte = ns_per_byte;
        }
    }
    lp
}

#[cfg(test)]
mod bw_tests {
    use super::*;
    use crate::packet::EvidenceMode;
    use pda_crypto::nonce::Nonce;
    use pda_pera::config::Sampling;

    #[test]
    fn in_band_evidence_pays_serialization_delay() {
        let cfg = PeraConfig::default().with_sampling(Sampling::PerPacket);
        let mut plain = linear_path_bw(4, &cfg, &[], 8);
        plain.send_plain(b"payload!");
        let t_plain = plain.sim.deliveries[0].time;

        let mut attested = linear_path_bw(4, &cfg, &[], 8);
        attested.send_attested(Nonce(1), EvidenceMode::InBand, b"payload!");
        let t_attested = attested.sim.deliveries[0].time;
        assert!(
            t_attested > t_plain,
            "in-band chain adds latency: {t_attested} vs {t_plain}"
        );

        // Out-of-band keeps the data path almost as fast as plain.
        let mut oob = linear_path_bw(4, &cfg, &[], 8);
        let appraiser = oob.appraiser;
        oob.send_attested(Nonce(1), EvidenceMode::OutOfBand { appraiser }, b"payload!");
        let t_oob = oob
            .sim
            .deliveries
            .iter()
            .find(|d| d.node == oob.server)
            .unwrap()
            .time;
        assert!(t_oob < t_attested, "oob {t_oob} < in-band {t_attested}");
    }
}
