//! Seeded traffic generation: reproducible multi-flow workloads for the
//! experiments (flow mixes, heavy hitters, beacon injection).
//!
//! All generation is driven by an explicit RNG seed so every experiment
//! that uses a workload is exactly reproducible — the simulator itself
//! stays deterministic.

use crate::packet::{EvidenceMode, SimPacket};
use crate::topology::NodeId;
use pda_crypto::nonce::Nonce;
use pda_dataplane::parser::build_udp_packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A flow specification: fixed 5-tuple, a number of packets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source IPv4 (abstract numeric).
    pub src: u32,
    /// Destination IPv4.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Packets in the flow.
    pub packets: u32,
    /// Payload stamped into every packet (first 8 bytes are the
    /// signature window the C2 scanner matches).
    pub payload: [u8; 8],
}

/// Workload shape parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of distinct flows.
    pub flows: u32,
    /// Packets per flow: drawn uniformly from this range.
    pub packets_per_flow: (u32, u32),
    /// Destination address all flows target.
    pub dst: u32,
    /// Fraction (0-100) of flows that carry the C2 beacon payload.
    pub beacon_percent: u32,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            flows: 32,
            packets_per_flow: (1, 16),
            dst: 0x0a00_0002,
            beacon_percent: 0,
        }
    }
}

/// The C2 beacon marker used by `programs::c2_scanner` workloads.
pub const BEACON: [u8; 8] = *b"C2BEACON";

/// Generate a reproducible workload from `seed`.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> Vec<FlowSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..spec.flows)
        .map(|i| {
            let (lo, hi) = spec.packets_per_flow;
            let packets = rng.gen_range(lo..=hi.max(lo));
            let beacon = rng.gen_range(0..100) < spec.beacon_percent;
            FlowSpec {
                src: 0x0a01_0000 + i,
                dst: spec.dst,
                sport: rng.gen_range(1024..u16::MAX),
                dport: if beacon { 8080 } else { 443 },
                packets,
                payload: if beacon { BEACON } else { *b"ORDINARY" },
            }
        })
        .collect()
}

/// Materialize a flow's packets as raw bytes.
pub fn flow_packets(flow: &FlowSpec) -> Vec<Vec<u8>> {
    (0..flow.packets)
        .map(|_| {
            build_udp_packet(
                0x0a,
                0x0b,
                flow.src,
                flow.dst,
                flow.sport,
                flow.dport,
                &flow.payload,
            )
        })
        .collect()
}

/// Inject a whole workload into a simulator from `host` (round-robin
/// across flows, one packet per tick), attested when `nonce_base` is
/// given (nonce = base + flow index).
pub fn inject_workload(
    sim: &mut crate::sim::Simulator,
    host: NodeId,
    port: u64,
    flows: &[FlowSpec],
    nonce_base: Option<u64>,
    mode: EvidenceMode,
) -> u64 {
    let mut injected = 0;
    let mut cursors: Vec<u32> = vec![0; flows.len()];
    let mut t = sim.now;
    loop {
        let mut progressed = false;
        for (i, flow) in flows.iter().enumerate() {
            if cursors[i] >= flow.packets {
                continue;
            }
            cursors[i] += 1;
            progressed = true;
            let bytes = build_udp_packet(
                0x0a,
                0x0b,
                flow.src,
                flow.dst,
                flow.sport,
                flow.dport,
                &flow.payload,
            );
            let pkt = match nonce_base {
                Some(base) => SimPacket::attested(bytes, host, Nonce(base + i as u64), mode),
                None => SimPacket::plain(bytes, host),
            };
            sim.inject(t, host, port, pkt);
            t += 100; // inter-packet gap
            injected += 1;
        }
        if !progressed {
            break;
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::linear_path;
    use pda_pera::config::{PeraConfig, Sampling};

    #[test]
    fn generation_is_seed_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&spec, 7), generate(&spec, 7));
        assert_ne!(generate(&spec, 7), generate(&spec, 8));
    }

    #[test]
    fn beacon_fraction_respected_roughly() {
        let spec = WorkloadSpec {
            flows: 200,
            beacon_percent: 25,
            ..WorkloadSpec::default()
        };
        let flows = generate(&spec, 1);
        let beacons = flows.iter().filter(|f| f.payload == BEACON).count();
        assert!((25..=75).contains(&beacons), "got {beacons} beacons");
        let spec0 = WorkloadSpec {
            flows: 100,
            beacon_percent: 0,
            ..WorkloadSpec::default()
        };
        assert!(generate(&spec0, 1).iter().all(|f| f.payload != BEACON));
    }

    #[test]
    fn flow_packets_materialize_count() {
        let f = FlowSpec {
            src: 1,
            dst: 2,
            sport: 1000,
            dport: 443,
            packets: 5,
            payload: *b"ORDINARY",
        };
        assert_eq!(flow_packets(&f).len(), 5);
    }

    #[test]
    fn workload_flows_through_simulator() {
        let spec = WorkloadSpec {
            flows: 8,
            packets_per_flow: (2, 4),
            ..WorkloadSpec::default()
        };
        let flows = generate(&spec, 3);
        let total: u32 = flows.iter().map(|f| f.packets).sum();
        let mut lp = linear_path(
            2,
            &PeraConfig::default().with_sampling(Sampling::PerFlow),
            &[],
        );
        let injected = inject_workload(
            &mut lp.sim,
            lp.client,
            1,
            &flows,
            Some(1000),
            EvidenceMode::InBand,
        );
        lp.sim.run();
        assert_eq!(injected, u64::from(total));
        assert_eq!(lp.sim.stats.delivered, u64::from(total));
        // Per-flow sampling: exactly `flows` chains are non-empty …
        let attested = lp
            .sim
            .deliveries
            .iter()
            .filter(|d| {
                d.packet
                    .attest
                    .as_ref()
                    .is_some_and(|a| !a.chain.is_empty())
            })
            .count();
        // … per switch seeing each flow first (2 switches share the
        // chain, so count packets whose chain has 2 records).
        assert_eq!(attested, flows.len());
    }
}
