//! # pda-netsim
//!
//! A deterministic discrete-event network simulator — the testbed
//! substrate on which the paper's PERA switches, legacy (non-attesting)
//! elements, hosts, and appraisers are composed into networks and the
//! use-case experiments are run.
//!
//! * [`topology`] — nodes, devices, latency-weighted links.
//! * [`packet`] — simulated packets carrying the §5.2 attestation
//!   options (nonce, in-band evidence chain, or out-of-band collector).
//! * [`sim`] — the event engine: packets hop link by link; PERA devices
//!   attest per their Fig.-4 configuration; out-of-band evidence flows
//!   over a control channel to the appraiser.
//! * [`scenarios`] — reusable topology builders (linear paths with
//!   PERA/legacy mixes) and traffic helpers.
//! * [`faults`] — the seeded, deterministic fault-injection plane:
//!   per-link loss/duplication/corruption/jitter, link- and
//!   switch-down windows, lossy control channel with retransmits.

pub mod ddos;
pub mod faults;
pub mod packet;
pub mod scenarios;
pub mod sim;
pub mod topology;
pub mod traffic;

pub use ddos::{DdosOutcome, DdosScenario};
pub use faults::{
    ControlRetryPolicy, DownWindow, FaultPlan, FaultPlane, FaultStats, LinkFaults, TxFate,
};
pub use packet::{AttestState, EvidenceMode, SimPacket};
pub use scenarios::{linear_path, linear_path_bw, test_packet, LinearPath};
pub use sim::{Delivery, SimStats, Simulator, CONTROL_LATENCY, MAX_HOPS};
pub use topology::{DeviceKind, Node, NodeId, SimTime, Topology};
