//! Executable versions of the paper's five motivating use cases (§2).
//!
//! Each helper wires the lower layers into the flow the paper narrates
//! and returns a structured outcome the examples, tests, and benches
//! assert on.

use crate::golden::{appraise_chain, ChainAppraisalFailure, GoldenStore};
use pda_crypto::digest::Digest;
use pda_crypto::keyreg::KeyRegistry;
use pda_crypto::merkle::{merkle_proof_verify, MerkleProof, MerkleTree};
use pda_crypto::nonce::Nonce;
use pda_pera::config::DetailLevel;
use pda_pera::evidence::EvidenceRecord;

/// UC1 — Configuration Assurance: does the evidence chain show every
/// hop running its vetted program?
///
/// Returns `Ok(hops)` (number of attested hops) or the failures; a
/// swapped firewall/forwarder/load-balancer surfaces as a
/// `ValueMismatch` on the Program level.
pub fn uc1_configuration_assurance(
    chain: &[EvidenceRecord],
    registry: &KeyRegistry,
    golden: &GoldenStore,
    nonce: Nonce,
) -> Result<usize, Vec<ChainAppraisalFailure>> {
    appraise_chain(chain, registry, golden, nonce, true)?;
    Ok(chain.len())
}

/// UC2 — Path evidence as an authentication factor: score how well a
/// presented chain matches a previously enrolled "home path".
///
/// The paper: "a user that forgets their password … could be permitted
/// limited access … if they can prove that they are connecting from
/// their home via an acceptable network path."
#[derive(Clone, Debug, PartialEq)]
pub struct PathAuthScore {
    /// Fraction of enrolled path hops present, in order, in the
    /// presented chain (1.0 = exact path).
    pub path_match: f64,
    /// Did the chain verify cryptographically?
    pub chain_valid: bool,
}

impl PathAuthScore {
    /// Policy decision: accept as a (weak) second factor?
    pub fn acceptable(&self, threshold: f64) -> bool {
        self.chain_valid && self.path_match >= threshold
    }
}

/// Score `presented` against the `enrolled` hop sequence.
pub fn uc2_path_authentication(
    presented: &[EvidenceRecord],
    enrolled: &[String],
    registry: &KeyRegistry,
    nonce: Nonce,
) -> PathAuthScore {
    let chain_valid = pda_pera::evidence::verify_chain(presented, registry, nonce, true).is_ok();
    // Longest in-order match of enrolled hops within the presented path.
    let presented_names: Vec<&str> = presented.iter().map(|r| r.switch.as_str()).collect();
    let mut matched = 0usize;
    let mut cursor = 0usize;
    for hop in enrolled {
        if let Some(pos) = presented_names[cursor..].iter().position(|n| n == hop) {
            matched += 1;
            cursor += pos + 1;
        }
    }
    PathAuthScore {
        path_match: if enrolled.is_empty() {
            0.0
        } else {
            matched as f64 / enrolled.len() as f64
        },
        chain_valid,
    }
}

/// UC3 — Path evidence as an authorization tag: the DDoS-mitigation
/// gate. "While under attack, a network could drop traffic for which it
/// lacks path-based evidence."
pub struct EvidenceGate {
    /// Only admit traffic whose chain passes golden appraisal.
    pub golden: GoldenStore,
    /// Verification keys.
    pub registry: KeyRegistry,
    /// Admitted / rejected counters.
    pub admitted: u64,
    /// Rejected packet count.
    pub rejected: u64,
}

impl EvidenceGate {
    /// New gate.
    pub fn new(golden: GoldenStore, registry: KeyRegistry) -> EvidenceGate {
        EvidenceGate {
            golden,
            registry,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Admit or drop one packet's evidence. `None` chain = no evidence.
    pub fn admit(&mut self, chain: Option<&[EvidenceRecord]>, nonce: Nonce) -> bool {
        let ok = match chain {
            None => false,
            Some([]) => false,
            Some(c) => appraise_chain(c, &self.registry, &self.golden, nonce, true).is_ok(),
        };
        if ok {
            self.admitted += 1;
        } else {
            self.rejected += 1;
        }
        ok
    }
}

/// UC4 — Evidence as documentation: an append-only audit trail of
/// evidence records, committed by a Merkle root, with extractable
/// membership proofs ("to justify other actions, such as applying for a
/// court order", and later "to prove compliance with the authorizing
/// court order").
pub struct AuditTrail {
    entries: Vec<Vec<u8>>,
    descriptions: Vec<String>,
}

/// A committed audit trail: root + entry count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditCommitment {
    /// Merkle root over all entries.
    pub root: Digest,
    /// Number of entries committed.
    pub entries: usize,
}

impl Default for AuditTrail {
    fn default() -> Self {
        Self::new()
    }
}

impl AuditTrail {
    /// Empty trail.
    pub fn new() -> AuditTrail {
        AuditTrail {
            entries: Vec::new(),
            descriptions: Vec::new(),
        }
    }

    /// Append an evidence record with a human-readable description.
    pub fn append(&mut self, record: &EvidenceRecord, description: impl Into<String>) {
        let mut bytes = record.chain.as_bytes().to_vec();
        bytes.extend_from_slice(record.switch.as_bytes());
        self.entries.push(bytes);
        self.descriptions.push(description.into());
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the trail empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Commit the current trail.
    pub fn commit(&self) -> AuditCommitment {
        assert!(!self.entries.is_empty(), "cannot commit an empty trail");
        AuditCommitment {
            root: MerkleTree::build(&self.entries).root(),
            entries: self.entries.len(),
        }
    }

    /// Produce a membership proof for entry `index` (e.g. the single
    /// action taken under a court order).
    pub fn prove(&self, index: usize) -> Option<(Vec<u8>, MerkleProof)> {
        let tree = MerkleTree::build(&self.entries);
        Some((self.entries.get(index)?.clone(), tree.prove(index)?))
    }

    /// Verify a proof against a commitment.
    pub fn verify(commitment: &AuditCommitment, entry: &[u8], proof: &MerkleProof) -> bool {
        merkle_proof_verify(&commitment.root, entry, proof)
    }
}

/// UC5 — Cross-referenced attestation: host evidence (a `pda-ra`
/// appraisal of e.g. the TLS stack) combined with the network path
/// chain. Exfiltration detection: outward traffic is only cleared when
/// *both* the producing host and the path attest clean.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrossAttestation {
    /// Host-side appraisal passed.
    pub host_ok: bool,
    /// Network-side chain appraisal passed.
    pub network_ok: bool,
}

impl CrossAttestation {
    /// The composed verdict.
    pub fn cleared(&self) -> bool {
        self.host_ok && self.network_ok
    }
}

/// Compose a host appraisal result with a network chain appraisal.
pub fn uc5_cross_attestation(
    host: &pda_ra::appraise::AppraisalResult,
    chain: &[EvidenceRecord],
    registry: &KeyRegistry,
    golden: &GoldenStore,
    nonce: Nonce,
) -> CrossAttestation {
    CrossAttestation {
        host_ok: host.ok,
        network_ok: appraise_chain(chain, registry, golden, nonce, true).is_ok(),
    }
}

/// Golden store construction helper: enroll every PERA switch of a
/// simulator at the given detail levels, reading current (trusted-setup)
/// values.
pub fn enroll_golden(sim: &pda_netsim::Simulator, levels: &[DetailLevel]) -> GoldenStore {
    let mut golden = GoldenStore::new();
    for node in &sim.topo.nodes {
        if let pda_netsim::DeviceKind::Pera(sw) = &node.kind {
            for &level in levels {
                let d = match level {
                    DetailLevel::Hardware => Digest::of_parts(&[b"hw:", sw.hardware_id.as_bytes()]),
                    DetailLevel::Program => sw.program.digest(),
                    DetailLevel::Tables => sw.program.tables_digest(),
                    DetailLevel::LintVerdict => {
                        pda_analyze::analyze_default(&sw.program).verdict_digest()
                    }
                    DetailLevel::ProgState | DetailLevel::Packets => continue,
                };
                golden.expect(&node.name, level, d);
            }
        }
    }
    golden
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_crypto::sig::{SigScheme, Signer};

    fn mk_chain(names: &[&str], nonce: Nonce) -> (Vec<EvidenceRecord>, KeyRegistry, GoldenStore) {
        let mut reg = KeyRegistry::new();
        let mut golden = GoldenStore::new();
        let mut prev = Digest::ZERO;
        let mut out = Vec::new();
        for n in names {
            let mut s = Signer::new(SigScheme::Hmac, Digest::of(n.as_bytes()).0, 0);
            reg.register(n.to_string().as_str().into(), s.verify_key(0));
            let prog = Digest::of_parts(&[b"prog:", n.as_bytes()]);
            golden.expect(n, DetailLevel::Program, prog);
            let r =
                EvidenceRecord::create(n, vec![(DetailLevel::Program, prog)], nonce, prev, &mut s)
                    .unwrap();
            prev = r.chain;
            out.push(r);
        }
        (out, reg, golden)
    }

    #[test]
    fn uc1_clean_chain_passes() {
        let (chain, reg, golden) = mk_chain(&["sw1", "sw2"], Nonce(1));
        assert_eq!(
            uc1_configuration_assurance(&chain, &reg, &golden, Nonce(1)),
            Ok(2)
        );
    }

    #[test]
    fn uc2_scores_partial_paths() {
        let (chain, reg, _) = mk_chain(&["sw1", "sw2", "sw3"], Nonce(1));
        let exact = uc2_path_authentication(
            &chain,
            &["sw1".into(), "sw2".into(), "sw3".into()],
            &reg,
            Nonce(1),
        );
        assert_eq!(exact.path_match, 1.0);
        assert!(exact.chain_valid);
        assert!(exact.acceptable(0.9));

        let partial = uc2_path_authentication(
            &chain,
            &["sw1".into(), "swX".into(), "sw3".into()],
            &reg,
            Nonce(1),
        );
        assert!((partial.path_match - 2.0 / 3.0).abs() < 1e-9);
        assert!(!partial.acceptable(0.9));
        assert!(partial.acceptable(0.5));
    }

    #[test]
    fn uc2_order_matters() {
        let (chain, reg, _) = mk_chain(&["sw1", "sw2", "sw3"], Nonce(1));
        let reversed = uc2_path_authentication(
            &chain,
            &["sw3".into(), "sw2".into(), "sw1".into()],
            &reg,
            Nonce(1),
        );
        assert!(reversed.path_match < 1.0);
    }

    #[test]
    fn uc3_gate_admits_evidence_rejects_bare_traffic() {
        let (chain, reg, golden) = mk_chain(&["sw1", "sw2"], Nonce(1));
        let mut gate = EvidenceGate::new(golden, reg);
        assert!(gate.admit(Some(&chain), Nonce(1)));
        assert!(!gate.admit(None, Nonce(1)));
        assert!(!gate.admit(Some(&[]), Nonce(1)));
        // Replay under a different nonce rejected:
        assert!(!gate.admit(Some(&chain), Nonce(2)));
        assert_eq!((gate.admitted, gate.rejected), (1, 3));
    }

    #[test]
    fn uc4_audit_trail_proofs() {
        let (chain, _, _) = mk_chain(&["sw1", "sw2", "sw3"], Nonce(1));
        let mut trail = AuditTrail::new();
        for (i, r) in chain.iter().enumerate() {
            trail.append(r, format!("C2 beacon observation {i}"));
        }
        let commitment = trail.commit();
        assert_eq!(commitment.entries, 3);
        let (entry, proof) = trail.prove(1).unwrap();
        assert!(AuditTrail::verify(&commitment, &entry, &proof));
        assert!(!AuditTrail::verify(&commitment, b"forged entry", &proof));
        assert!(trail.prove(99).is_none());
    }

    #[test]
    fn uc5_requires_both_sides() {
        let (chain, reg, golden) = mk_chain(&["sw1"], Nonce(1));
        let host_ok = pda_ra::appraise::AppraisalResult {
            ok: true,
            failures: vec![],
            checks: 1,
        };
        let host_bad = pda_ra::appraise::AppraisalResult {
            ok: false,
            failures: vec![],
            checks: 1,
        };
        assert!(uc5_cross_attestation(&host_ok, &chain, &reg, &golden, Nonce(1)).cleared());
        assert!(!uc5_cross_attestation(&host_bad, &chain, &reg, &golden, Nonce(1)).cleared());
        assert!(!uc5_cross_attestation(&host_ok, &chain, &reg, &golden, Nonce(2)).cleared());
    }

    #[test]
    fn enroll_golden_reads_simulator_switches() {
        let lp = pda_netsim::linear_path(2, &pda_pera::config::PeraConfig::default(), &[]);
        let golden = enroll_golden(&lp.sim, &[DetailLevel::Hardware, DetailLevel::Program]);
        assert!(golden.expected("sw1", DetailLevel::Program).is_some());
        assert!(golden.expected("sw2", DetailLevel::Hardware).is_some());
        assert!(golden.expected("client", DetailLevel::Program).is_none());
    }
}
