//! `pda` — command-line front end for the attestation stack.
//!
//! ```text
//! pda parse    '<copland request>'            parse + evidence shape
//! pda analyze  '<copland request>' --control us[,ks] --goal exts
//! pda hybrid   '<hybrid policy>'              parse a §5.1 policy
//! pda resolve  '<hybrid policy>' --path 'sw1:ra,key;legacy;sw2:ra,key'
//!              [--param n=1] [--pointwise]    bind abstract places
//! pda wire     '<hybrid policy>' --path … --nonce N
//!              encode the §5.2 options header (hex on stdout)
//! pda decode   <hex>                          decode an options header
//! pda simulate --hops N [--legacy i,j] [--oob] [--packets P]
//!              [--telemetry json|prom|off]
//!              run the linear scenario and appraise
//! pda netkat   '<policy>' [--equiv '<policy>']  parse / compare NetKAT
//! pda netkat   equiv '<p>' '<q>' [--backend sym|enum]
//! pda netkat   equiv --check [--backend sym|enum]
//!              decide policy equivalence (corpus regression with --check)
//! pda netkat   reach '<step>' --from 'sw=1,pt=0' --goal '<pred>'
//!              [--backend sym|enum]          reachability + witness path
//! pda netkat   slice '<policy>' --switch N [--backend sym|enum]
//!              per-switch slice, soundness verified symbolically
//! pda lint     <builtin|all> [--format json] [--check]
//!              run the static analyzer over builtin dataplane programs
//! pda serve    [--port P] [--hops N] [--appraisers N] [--quorum Q]
//!              [--corrupt] [--workers W] [--flight-recorder <path>]
//!              [--slo-target-ns N] [--no-keep-alive] [--max-requests N]
//!              [--idle-timeout-ms N]
//!              run the long-lived appraisal service (pda-svc)
//! pda client   --addr H:P [--no-keep-alive]
//!              <health|metrics|submit|appraise|audit|churn|shutdown>
//!              talk to a running appraisal service
//! pda trace    <dump.jsonl> [--trace <16-hex id>]
//!              render flight-recorder dumps as per-trace span trees
//! ```

use pda_core::prelude::*;
use pda_hybrid::wire;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "parse" => cmd_parse(rest),
        "analyze" => cmd_analyze(rest),
        "hybrid" => cmd_hybrid(rest),
        "resolve" => cmd_resolve(rest),
        "wire" => cmd_wire(rest),
        "decode" => cmd_decode(rest),
        "simulate" => cmd_simulate(rest),
        "netkat" => cmd_netkat(rest),
        "lint" => cmd_lint(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pda parse    '<copland request>'
  pda analyze  '<copland request>' --control <places> --goal <component>
  pda hybrid   '<hybrid policy>'
  pda resolve  '<hybrid policy>' --path '<spec>' [--param k=v]... [--pointwise]
  pda wire     '<hybrid policy>' --path '<spec>' [--param k=v]... [--nonce N]
  pda decode   <hex-bytes>
  pda simulate --hops N [--legacy i,j] [--oob] [--packets P]
               [--telemetry json|prom|off]
  pda netkat   '<policy>' [--equiv '<policy>']
  pda netkat   equiv '<p>' '<q>' | equiv --check   [--backend sym|enum]
  pda netkat   reach '<step>' --from 'sw=1,pt=0' --goal '<pred>'
               [--backend sym|enum]
  pda netkat   slice '<policy>' --switch N [--backend sym|enum]
  pda lint     <builtin|all> [--format json] [--check]
  pda serve    [--port P] [--hops N] [--appraisers N]
               [--quorum majority|unanimous|K-of-N] [--corrupt] [--workers W]
               [--flight-recorder <dump.jsonl>] [--slo-target-ns N]
               [--no-keep-alive] [--max-requests N] [--idle-timeout-ms N]
  pda client   --addr H:P [--no-keep-alive] health | metrics | shutdown
  pda client   --addr H:P submit [--hops N] [--nonce N] [--packets P] [--rogue]
  pda client   --addr H:P appraise --nonce N [--expect ok|reject]
  pda client   --addr H:P audit [--subject S] [--limit N]
  pda client   --addr H:P churn [--epochs E] [--packets P] [--rogue-every K]
  pda trace    <dump.jsonl> [--trace <16-hex id>]

path spec: semicolon-separated nodes, each `name[:prop,...]` with props
  ra | key | runs=<fn> | test=<name>   (no props = legacy node)";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.as_str());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn first_positional(args: &[String]) -> Result<&str, String> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or_else(|| "missing input".to_string())
}

/// First positional argument, skipping the values of `valued` flags so
/// `--addr 127.0.0.1:7421 health` resolves to `health`.
fn positional_after_flags<'a>(args: &'a [String], valued: &[&str]) -> Result<&'a str, String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if valued.contains(&a) {
                i += 1;
            }
        } else {
            return Ok(a);
        }
        i += 1;
    }
    Err("missing action".to_string())
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let src = first_positional(args)?;
    let req = parse_request(src).map_err(|e| e.to_string())?;
    println!("parsed:   {}", pretty_request(&req));
    println!("rp:       {}", req.rp);
    println!("params:   {:?}", req.params);
    println!(
        "size:     {} nodes, depth {}",
        req.phrase.size(),
        req.phrase.depth()
    );
    println!("evidence: {}", eval_request(&req));
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let src = first_positional(args)?;
    let control = flag_value(args, "--control").unwrap_or("us");
    let goal = flag_value(args, "--goal").unwrap_or("exts");
    let req = parse_request(src).map_err(|e| e.to_string())?;
    let places: Vec<&str> = control.split(',').collect();
    let analysis = analyze(&req, &AdversaryModel::controlling(&places), goal);
    println!("policy:  {}", pretty_request(&req));
    println!("goal:    keep `{goal}` corrupted, adversary controls {places:?}");
    println!("verdict: {}", analysis.verdict);
    if let Some(s) = &analysis.best_strategy {
        println!(
            "cheapest evasion: {} corruptions ({} recent), {} repairs",
            s.corruptions, s.recent_corruptions, s.repairs
        );
        for a in &s.actions {
            println!("  - {a}");
        }
        println!("  measurement order: {}", s.linearization.join(" → "));
    }
    Ok(())
}

fn cmd_hybrid(args: &[String]) -> Result<(), String> {
    let src = first_positional(args)?;
    let p = parse_hybrid(src).map_err(|e| e.to_string())?;
    println!("rp:         {}", p.rp);
    println!("params:     {:?}", p.params);
    println!("forall:     {:?}", p.quantified);
    println!("clauses:    {}", p.body.clause_count());
    println!("place vars: {:?}", p.body.place_vars());
    Ok(())
}

fn parse_path(spec: &str) -> Result<Vec<NodeInfo>, String> {
    spec.split(';')
        .filter(|s| !s.trim().is_empty())
        .map(|node| {
            let mut parts = node.trim().splitn(2, ':');
            let name = parts.next().unwrap().trim();
            if name.is_empty() {
                return Err(format!("empty node name in `{node}`"));
            }
            let mut info = NodeInfo::legacy(name);
            if let Some(props) = parts.next() {
                for prop in props.split(',') {
                    let prop = prop.trim();
                    match prop {
                        "ra" => info.supports_ra = true,
                        "key" => info.has_key = true,
                        _ if prop.starts_with("runs=") => {
                            info.functions.push(prop["runs=".len()..].to_string())
                        }
                        _ if prop.starts_with("test=") => {
                            info.passing_tests.push(prop["test=".len()..].to_string())
                        }
                        other => return Err(format!("unknown node property `{other}`")),
                    }
                }
            }
            Ok(info)
        })
        .collect()
}

fn parse_params(args: &[String]) -> Vec<(String, String)> {
    flag_values(args, "--param")
        .into_iter()
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k.to_string(), v.to_string()))
        })
        .collect()
}

fn do_resolve(args: &[String]) -> Result<pda_hybrid::Resolved, String> {
    let src = first_positional(args)?;
    let policy = parse_hybrid(src).map_err(|e| e.to_string())?;
    let path = parse_path(flag_value(args, "--path").unwrap_or(""))?;
    let params = parse_params(args);
    let params_ref: Vec<(&str, &str)> = params
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let composition = if has_flag(args, "--pointwise") {
        Composition::Pointwise
    } else {
        Composition::Chained
    };
    resolve(&policy, &path, &params_ref, composition).map_err(|e| e.to_string())
}

fn cmd_resolve(args: &[String]) -> Result<(), String> {
    let r = do_resolve(args)?;
    println!("request:  {}", pretty_request(&r.request));
    println!("bindings: {:?}", r.bindings);
    println!("skipped:  {:?}", r.skipped);
    println!("directives:");
    for d in &r.directives {
        match &d.guard {
            Some(g) => println!("  @{} [{} |> …]", d.node, g),
            None => println!("  @{} […]", d.node),
        }
    }
    Ok(())
}

fn cmd_wire(args: &[String]) -> Result<(), String> {
    let r = do_resolve(args)?;
    let nonce: u64 = flag_value(args, "--nonce")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --nonce".to_string())?;
    let bytes = wire::encode(&wire::WirePolicy {
        nonce,
        flags: wire::Flags {
            in_band_evidence: !has_flag(args, "--oob"),
        },
        directives: r.directives,
    });
    println!("{}", hex(&bytes));
    eprintln!("({} bytes)", bytes.len());
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let hex_in = first_positional(args)?;
    let bytes = unhex(hex_in)?;
    let p = wire::decode(&bytes).map_err(|e| e.to_string())?;
    println!("nonce:      {:#018x}", p.nonce);
    println!("in-band:    {}", p.flags.in_band_evidence);
    println!("directives: {}", p.directives.len());
    for d in &p.directives {
        let body = pda_copland::pretty_phrase(&d.body);
        match &d.guard {
            Some(g) => println!("  @{} [{} |> {}]", d.node, g, body),
            None => println!("  @{} [{}]", d.node, body),
        }
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let hops: usize = flag_value(args, "--hops")
        .unwrap_or("3")
        .parse()
        .map_err(|_| "bad --hops".to_string())?;
    let packets: u64 = flag_value(args, "--packets")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --packets".to_string())?;
    let legacy: Vec<usize> = flag_value(args, "--legacy")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_default();
    let telemetry_mode = flag_value(args, "--telemetry").unwrap_or("off");
    if !matches!(telemetry_mode, "off" | "json" | "prom") {
        return Err(format!(
            "unknown --telemetry mode `{telemetry_mode}` (want json | prom | off)"
        ));
    }
    let tel = if telemetry_mode == "off" {
        pda_telemetry::Telemetry::off()
    } else {
        pda_telemetry::Telemetry::collecting()
    };
    let config = PeraConfig::default()
        .with_details(&[DetailLevel::Hardware, DetailLevel::Program])
        .with_sampling(Sampling::PerPacket);
    let mut net = linear_path(hops, &config, &legacy);
    net.sim.attach_telemetry(tel.clone());
    let golden = enroll_golden(&net.sim, &[DetailLevel::Hardware, DetailLevel::Program]);
    let appraiser = net.appraiser;
    let oob = has_flag(args, "--oob");
    for i in 0..packets {
        let mode = if oob {
            EvidenceMode::OutOfBand { appraiser }
        } else {
            EvidenceMode::InBand
        };
        net.send_attested(Nonce(1 + i), mode, b"payload!");
    }
    println!("stats: {:?}", net.sim.stats);
    let verdict = if oob {
        let recs = net.sim.evidence_at(appraiser);
        appraise_chain(
            &recs[..recs.len().min(hops - legacy.len())],
            &net.sim.registry,
            &golden,
            Nonce(1),
            true,
        )
    } else {
        let chains = net.server_chains();
        appraise_chain(&chains[0].chain, &net.sim.registry, &golden, Nonce(1), true)
    };
    match verdict {
        Ok(()) => println!("appraisal: PASS"),
        Err(fails) => {
            println!("appraisal: FAIL");
            for f in fails {
                println!("  {f}");
            }
        }
    }
    match telemetry_mode {
        "json" => println!("{}", tel.dump_json().encode()),
        "prom" => print!("{}", tel.dump_prometheus()),
        _ => {}
    }
    Ok(())
}

fn cmd_netkat(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("equiv") => cmd_netkat_equiv(&args[1..]),
        Some("reach") => cmd_netkat_reach(&args[1..]),
        Some("slice") => cmd_netkat_slice(&args[1..]),
        _ => cmd_netkat_legacy(args),
    }
}

/// Legacy form: `pda netkat '<policy>' [--equiv '<policy>']`.
fn cmd_netkat_legacy(args: &[String]) -> Result<(), String> {
    let src = first_positional(args)?;
    let p = pda_netkat::parse_policy(src).map_err(|e| e.to_string())?;
    println!("parsed: {p}");
    println!("size:   {} nodes, dup: {}", p.size(), p.has_dup());
    if let Some(other) = flag_value(args, "--equiv") {
        let q = pda_netkat::parse_policy(other).map_err(|e| e.to_string())?;
        if p.has_dup() || q.has_dup() {
            return Err("equivalence works on the dup-free fragment".into());
        }
        match pda_netkat::counterexample(&p, &q) {
            None => println!("equivalent: yes"),
            Some(cx) => println!("equivalent: NO — counterexample {cx:?}"),
        }
    }
    Ok(())
}

/// `--backend sym|enum` (default: the symbolic decision procedure).
fn netkat_backend(args: &[String]) -> Result<pda_netkat::Backend, String> {
    match flag_value(args, "--backend").unwrap_or("sym") {
        "sym" => Ok(pda_netkat::Backend::Symbolic),
        "enum" => Ok(pda_netkat::Backend::Enumerative),
        other => Err(format!("unknown --backend `{other}` (want sym | enum)")),
    }
}

/// Positional (non-flag) arguments; `--check` is a bare flag, every other
/// `--flag` consumes the following value.
fn netkat_positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--check" {
            i += 1;
        } else if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].as_str());
            i += 1;
        }
    }
    out
}

fn cmd_netkat_equiv(args: &[String]) -> Result<(), String> {
    let backend = netkat_backend(args)?;
    if has_flag(args, "--check") {
        let mut bad = Vec::new();
        for pair in pda_netkat::corpus::policy_pairs() {
            let got = pda_netkat::equivalent_with(backend, &pair.p, &pair.q);
            let ok = got == pair.equivalent;
            println!(
                "{} {:30} expected {}, got {}",
                if ok { "ok  " } else { "FAIL" },
                pair.name,
                pair.equivalent,
                got
            );
            if !ok {
                bad.push(pair.name);
            }
        }
        if !bad.is_empty() {
            return Err(format!(
                "corpus equivalence check failed: {}",
                bad.join(", ")
            ));
        }
        return Ok(());
    }
    let pos = netkat_positionals(args);
    let [p_src, q_src] = pos[..] else {
        return Err("netkat equiv wants two policies (or --check)".into());
    };
    let p = pda_netkat::parse_policy(p_src).map_err(|e| e.to_string())?;
    let q = pda_netkat::parse_policy(q_src).map_err(|e| e.to_string())?;
    if p.has_dup() || q.has_dup() {
        return Err("equivalence works on the dup-free fragment".into());
    }
    match pda_netkat::counterexample_with(backend, &p, &q) {
        None => println!("equivalent: yes"),
        Some(cx) => println!("equivalent: NO — counterexample {cx:?}"),
    }
    Ok(())
}

/// Parse a `--from` packet spec: comma-separated `field=value` pairs
/// (unlisted fields are zero), e.g. `sw=1,pt=0,dst=5`.
fn parse_packet_spec(spec: &str) -> Result<pda_netkat::Packet, String> {
    use pda_netkat::Field;
    let mut pkt = pda_netkat::Packet::zero();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let (name, val) = part
            .split_once('=')
            .ok_or_else(|| format!("bad packet component `{part}` (want field=value)"))?;
        let field = match name.trim() {
            "sw" | "switch" => Field::Switch,
            "pt" | "port" => Field::Port,
            "src" => Field::Src,
            "dst" => Field::Dst,
            "proto" => Field::Proto,
            "tag" => Field::Tag,
            other => return Err(format!("unknown field `{other}`")),
        };
        let v: u32 = val
            .trim()
            .parse()
            .map_err(|_| format!("bad value `{val}` for field `{name}`"))?;
        pkt = pkt.with(field, v);
    }
    Ok(pkt)
}

fn cmd_netkat_reach(args: &[String]) -> Result<(), String> {
    let backend = netkat_backend(args)?;
    let step = pda_netkat::parse_policy(first_positional(args)?).map_err(|e| e.to_string())?;
    let from = parse_packet_spec(
        flag_value(args, "--from").ok_or("netkat reach wants --from 'sw=..,pt=..'")?,
    )?;
    let goal = pda_netkat::parse_pred(
        flag_value(args, "--goal").ok_or("netkat reach wants --goal '<pred>'")?,
    )
    .map_err(|e| e.to_string())?;
    let init = std::collections::BTreeSet::from([from]);
    let path = match backend {
        pda_netkat::Backend::Symbolic => pda_netkat::witness_path(&step, &init, &goal),
        pda_netkat::Backend::Enumerative => {
            pda_netkat::witness_path_enumerative(&step, &init, &goal)
        }
    };
    match path {
        Some(path) => {
            println!("reachable: yes ({} hops)", path.len() - 1);
            println!("switches:  {:?}", pda_netkat::switches_along(&path));
            for (i, pkt) in path.iter().enumerate() {
                println!("  step {i}: {pkt:?}");
            }
        }
        None => println!("reachable: no"),
    }
    Ok(())
}

fn cmd_netkat_slice(args: &[String]) -> Result<(), String> {
    use pda_netkat::{Field, Policy, Pred};
    let backend = netkat_backend(args)?;
    let p = pda_netkat::parse_policy(first_positional(args)?).map_err(|e| e.to_string())?;
    let sw: u32 = flag_value(args, "--switch")
        .ok_or("netkat slice wants --switch N")?
        .parse()
        .map_err(|_| "bad --switch value".to_string())?;
    let slice = pda_netkat::slice_for_switch(&p, sw);
    let guard = Policy::filter(Pred::test(Field::Switch, sw));
    let verified = !p.has_dup()
        && pda_netkat::equivalent_with(
            backend,
            &guard.clone().seq(p.clone()),
            &guard.seq(slice.clone()),
        );
    println!("slice:    {slice}");
    println!("size:     {} nodes (network: {})", slice.size(), p.size());
    println!("verified: {}", if verified { "yes" } else { "NO" });
    println!(
        "dead:     {}",
        if pda_netkat::slice_is_dead(&p, sw) {
            "yes (no packet at this switch survives)"
        } else {
            "no"
        }
    );
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    use pda_analyze::{analyze_default, corpus, Severity};
    let target = first_positional(args)?;
    let format = flag_value(args, "--format").unwrap_or("human");
    if !matches!(format, "human" | "json") {
        return Err(format!("unknown --format `{format}` (want human | json)"));
    }
    let check = has_flag(args, "--check");
    let programs: Vec<(String, pda_dataplane::pipeline::DataplaneProgram, bool)> =
        if target == "all" {
            corpus::builtins()
                .into_iter()
                .map(|(n, p, r)| (n.to_string(), p, r))
                .collect()
        } else {
            let (p, rogue) = corpus::builtin(target).ok_or_else(|| {
                format!(
                    "unknown builtin `{target}` (want one of {} or `all`)",
                    corpus::names().join(", ")
                )
            })?;
            vec![(target.to_string(), p, rogue)]
        };
    let mut json_out = Vec::new();
    let mut check_failures = Vec::new();
    for (name, program, rogue) in &programs {
        let report = analyze_default(program);
        match format {
            "json" => json_out.push(pda_telemetry::json::Json::Obj(vec![
                (
                    "builtin".into(),
                    pda_telemetry::json::Json::Str(name.clone()),
                ),
                ("rogue".into(), pda_telemetry::json::Json::Bool(*rogue)),
                ("report".into(), report.to_json()),
            ])),
            _ => {
                println!("== {name} ({}) ==", report.program);
                println!("program digest: {}", report.program_digest.short());
                println!("lint verdict:   {}", report.verdict_digest().short());
                for d in &report.diagnostics {
                    println!("  {}: {}", d.snapshot_line(), d.message);
                }
                let worst = report
                    .worst()
                    .map(|s| s.name().to_string())
                    .unwrap_or_else(|| "clean".into());
                println!("{} diagnostics, worst: {worst}", report.diagnostics.len());
                println!();
            }
        }
        if check {
            // CI gate: rogues must trip an Error; benigns must emit
            // nothing at Warning or above.
            if *rogue && report.count(Severity::Error) == 0 {
                check_failures.push(format!("{name}: rogue program not flagged at error"));
            }
            if !*rogue && !report.clean_at(Severity::Info) {
                check_failures.push(format!(
                    "{name}: benign program emits diagnostics above info"
                ));
            }
        }
    }
    if format == "json" {
        println!("{}", pda_telemetry::json::Json::Arr(json_out).encode());
    }
    if check_failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "lint check failed:\n  {}",
            check_failures.join("\n  ")
        ))
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use pda_svc::{AppraisalService, Quorum, SvcConfig};
    use std::sync::Arc;

    let port: u16 = flag_value(args, "--port")
        .unwrap_or("7421")
        .parse()
        .map_err(|_| "bad --port".to_string())?;
    let hops: usize = flag_value(args, "--hops")
        .unwrap_or("3")
        .parse()
        .map_err(|_| "bad --hops".to_string())?;
    let appraisers: usize = flag_value(args, "--appraisers")
        .unwrap_or("3")
        .parse()
        .map_err(|_| "bad --appraisers".to_string())?;
    let quorum_spec = flag_value(args, "--quorum").unwrap_or("majority");
    let quorum = Quorum::parse(quorum_spec)
        .ok_or_else(|| format!("bad --quorum `{quorum_spec}` (want majority|unanimous|K-of-N)"))?;
    let workers: usize = flag_value(args, "--workers")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "bad --workers".to_string())?;
    let config = SvcConfig {
        hops,
        appraisers,
        quorum,
        corrupt: has_flag(args, "--corrupt"),
        workers,
    };

    // Optional observability extras: a flight recorder dumping
    // anomalous traces to a JSONL file, and a verdict-latency SLO.
    let flight_path = flag_value(args, "--flight-recorder");
    let slo_target: Option<u64> = flag_value(args, "--slo-target-ns")
        .map(|v| v.parse().map_err(|_| "bad --slo-target-ns".to_string()))
        .transpose()?;
    let (tel, recorder) = match flight_path {
        Some(_) => {
            let rec = Arc::new(pda_telemetry::FlightRecorder::new(256, 256));
            (pda_telemetry::Telemetry::new(rec.clone()), Some(rec))
        }
        None => (pda_telemetry::Telemetry::collecting(), None),
    };
    let mut svc = AppraisalService::new(config.clone(), tel);
    if let (Some(rec), Some(path)) = (recorder, flight_path) {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        rec.set_sink(Box::new(file));
        svc = svc.with_flight_recorder(rec);
        println!("flight recorder: dumping anomalous traces to {path}");
    }
    if let Some(target) = slo_target {
        svc = svc.with_slo(pda_telemetry::SloPolicy::new(
            "svc.verdict.ns",
            target,
            0.99,
        ));
        println!("slo: 99% of verdicts within {target} ns (gauges on /metrics)");
    }
    // Connection-plane knobs: keep-alive is the default; `--no-keep-alive`
    // restores one-request-per-connection for A/B runs and legacy peers.
    let mut options = pda_svc::ServeOptions::default();
    if has_flag(args, "--no-keep-alive") {
        options = pda_svc::ServeOptions::closing();
    }
    if let Some(v) = flag_value(args, "--max-requests") {
        options.max_requests = v.parse().map_err(|_| "bad --max-requests".to_string())?;
    }
    if let Some(v) = flag_value(args, "--idle-timeout-ms") {
        let ms: u64 = v.parse().map_err(|_| "bad --idle-timeout-ms".to_string())?;
        options.idle_timeout = std::time::Duration::from_millis(ms);
    }

    let svc = Arc::new(svc);
    let mut server = pda_svc::serve_with(
        &format!("127.0.0.1:{port}"),
        workers,
        Arc::clone(&svc),
        options.clone(),
    )
    .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    println!("pda-svc listening on {}", server.addr);
    println!(
        "connections: {}",
        if options.keep_alive {
            format!(
                "keep-alive (cap {} requests, idle timeout {:?})",
                options.max_requests, options.idle_timeout
            )
        } else {
            "close after each request".to_string()
        }
    );
    println!(
        "fleet: {hops} hops; federation: {appraisers} appraisers, quorum {}{}",
        config.quorum,
        if config.corrupt {
            " (last appraiser deliberately corrupted)"
        } else {
            ""
        }
    );
    // Serve until a `shutdown` RPC arrives.
    while !svc.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.stop();
    println!("pda-svc stopped (shutdown RPC)");
    Ok(())
}

/// Drive a fleet to produce evidence for `packets` consecutive nonces
/// starting at `base`, optionally with `sw1` reloaded rogue.
fn generate_evidence(
    hops: usize,
    base: u64,
    packets: u64,
    rogue: bool,
) -> Vec<pda_pera::EvidenceRecord> {
    let mut fleet = pda_svc::fleet::standard_fleet(hops);
    if rogue {
        pda_svc::rogue_reload(&mut fleet);
    }
    let appraiser = fleet.appraiser;
    for i in 0..packets {
        fleet.send_attested(
            Nonce(base + i),
            EvidenceMode::OutOfBand { appraiser },
            b"pda-client",
        );
    }
    fleet.sim.evidence_at(appraiser).to_vec()
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    use pda_svc::SvcClient;

    let addr: std::net::SocketAddr = flag_value(args, "--addr")
        .ok_or("--addr H:P is required")?
        .parse()
        .map_err(|_| "bad --addr (want host:port)".to_string())?;
    let client = SvcClient::new(addr).with_keep_alive(!has_flag(args, "--no-keep-alive"));
    let action = positional_after_flags(
        args,
        &[
            "--addr",
            "--nonce",
            "--hops",
            "--packets",
            "--expect",
            "--subject",
            "--limit",
            "--epochs",
            "--rogue-every",
        ],
    )?;
    let nonce: u64 = flag_value(args, "--nonce")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --nonce".to_string())?;
    match action {
        "health" => println!("{}", client.health()?.encode()),
        "metrics" => println!("{}", client.metrics()?.encode()),
        "shutdown" => println!("{}", client.shutdown()?.encode()),
        "submit" => {
            let hops: usize = flag_value(args, "--hops")
                .unwrap_or("3")
                .parse()
                .map_err(|_| "bad --hops".to_string())?;
            let packets: u64 = flag_value(args, "--packets")
                .unwrap_or("1")
                .parse()
                .map_err(|_| "bad --packets".to_string())?;
            let records = generate_evidence(hops, nonce, packets, has_flag(args, "--rogue"));
            if records.is_empty() {
                return Err("fleet produced no evidence".into());
            }
            println!("{}", client.submit_evidence(&records)?.encode());
        }
        "appraise" => {
            let verdict = client.appraise(nonce)?;
            println!("{}", verdict.encode());
            if let Some(expect) = flag_value(args, "--expect") {
                let ok = verdict
                    .get("ok")
                    .and_then(pda_telemetry::json::Json::as_bool)
                    .unwrap_or(false);
                let matches = match expect {
                    "ok" => ok,
                    "reject" => !ok,
                    other => return Err(format!("bad --expect `{other}` (want ok|reject)")),
                };
                if !matches {
                    return Err(format!("verdict ok={ok}, expected {expect}"));
                }
            }
        }
        "audit" => {
            let subject = flag_value(args, "--subject");
            let limit = flag_value(args, "--limit")
                .map(|v| v.parse::<u64>().map_err(|_| "bad --limit".to_string()))
                .transpose()?;
            println!("{}", client.query_audit_log(subject, limit)?.encode());
        }
        "churn" => {
            let cfg = pda_svc::ChurnConfig {
                epochs: flag_value(args, "--epochs")
                    .unwrap_or("5")
                    .parse()
                    .map_err(|_| "bad --epochs".to_string())?,
                packets_per_epoch: flag_value(args, "--packets")
                    .unwrap_or("10")
                    .parse()
                    .map_err(|_| "bad --packets".to_string())?,
                rogue_every: flag_value(args, "--rogue-every")
                    .unwrap_or("4")
                    .parse()
                    .map_err(|_| "bad --rogue-every".to_string())?,
                ..pda_svc::ChurnConfig::default()
            };
            let report = pda_svc::run_churn(&client, &cfg)?;
            println!("{report:#?}");
            println!("client connection reuses: {}", client.reused_connections());
        }
        other => {
            return Err(format!(
                "unknown client action `{other}` (want health|metrics|submit|appraise|audit|churn|shutdown)"
            ))
        }
    }
    Ok(())
}

/// Render a flight-recorder JSONL dump as per-trace span trees.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let path = first_positional(args)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let filter = flag_value(args, "--trace")
        .map(|s| {
            pda_telemetry::TraceId::from_hex(s)
                .ok_or_else(|| format!("bad --trace `{s}` (want 16 hex chars)"))
        })
        .transpose()?;
    print!("{}", pda_telemetry::render_trace_trees(&text, filter)?);
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}
