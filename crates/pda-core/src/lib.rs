//! # pda-core
//!
//! The top-level facade of the **pda** stack — a full-system Rust
//! reproduction of *"A Case for Remote Attestation in Programmable
//! Dataplanes"* (HotNets '22).
//!
//! The stack, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`pda_crypto`] | root-of-trust primitives (SHA-256, HMAC, hash-based signatures, key registry, nonces) |
//! | [`pda_copland`] | the Copland RA policy language: parser, evidence & event semantics, adversary analysis |
//! | [`pda_netkat`] | NetKAT: semantics, equivalence, reachability |
//! | [`pda_hybrid`] | network-aware Copland (§5.1): `∀`/`∗⇒`/`▶`, path resolution, §5.2 wire format |
//! | [`pda_ra`] | concrete RA execution and appraisal (Fig. 1) |
//! | [`pda_dataplane`] | PISA pipeline simulator + baseline P4-style programs |
//! | [`pda_pera`] | PERA: PISA extended with RA (Figs. 2-4) |
//! | [`pda_netsim`] | deterministic discrete-event network simulator |
//!
//! This crate adds the relying-party-side glue: golden-value chain
//! appraisal ([`golden`]) and executable versions of the paper's five
//! use cases ([`usecases`]).
//!
//! ## Quickstart
//!
//! ```
//! use pda_core::prelude::*;
//!
//! // A 3-switch path, attesting hardware+program per packet.
//! let config = PeraConfig::default().with_sampling(Sampling::PerPacket);
//! let mut net = linear_path(3, &config, &[]);
//! let golden = enroll_golden(&net.sim, &[DetailLevel::Hardware, DetailLevel::Program]);
//!
//! // Send an attested packet; evidence accumulates in-band.
//! net.send_attested(Nonce(7), EvidenceMode::InBand, b"payload!");
//! let chains = net.server_chains();
//! let chain = &chains[0].chain;
//!
//! // UC1: every hop attests its vetted program.
//! let hops = uc1_configuration_assurance(chain, &net.sim.registry, &golden, Nonce(7))
//!     .expect("clean network appraises clean");
//! assert_eq!(hops, 3);
//! ```

pub mod usecases;

// Golden-value chain appraisal moved down into `pda-pera` so the
// long-running appraisal service (`pda-svc`) can use it without
// depending on this facade crate; these re-exports keep the historical
// `pda_core::golden::*` paths working.
pub use pda_pera::golden;
pub use pda_pera::golden::{appraise_chain, ChainAppraisalFailure, GoldenStore};
pub use usecases::{
    enroll_golden, uc1_configuration_assurance, uc2_path_authentication, uc5_cross_attestation,
    AuditCommitment, AuditTrail, CrossAttestation, EvidenceGate, PathAuthScore,
};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::golden::{appraise_chain, ChainAppraisalFailure, GoldenStore};
    pub use crate::usecases::{
        enroll_golden, uc1_configuration_assurance, uc2_path_authentication, uc5_cross_attestation,
        AuditTrail, CrossAttestation, EvidenceGate,
    };
    pub use pda_copland::adversary::{analyze, AdversaryModel, Verdict};
    pub use pda_copland::parser::parse_request;
    pub use pda_copland::{eval_request, pretty_request};
    pub use pda_crypto::digest::Digest;
    pub use pda_crypto::nonce::Nonce;
    pub use pda_crypto::sig::SigScheme;
    pub use pda_hybrid::parser::parse_hybrid;
    pub use pda_hybrid::resolve::{resolve, Composition, NodeInfo};
    pub use pda_netsim::{linear_path, EvidenceMode, SimPacket, Simulator};
    pub use pda_pera::config::{DetailLevel, EvidenceComposition, PeraConfig, Sampling};
    pub use pda_pera::evidence::verify_chain;
    pub use pda_pera::switch::PeraSwitch;
    pub use pda_ra::protocol::run_request;
    pub use pda_ra::runtime::{Environment, PlaceRuntime};
}
