//! Canonical instantiations of every builtin program in
//! `pda_dataplane::programs` — the analyzer's lint corpus. The CLI
//! (`pda lint`), experiment E17, the golden-diagnostics snapshot test,
//! and the CI `analyze` job all share these exact instances so their
//! digests and diagnostics agree.

use pda_dataplane::{programs, DataplaneProgram};

/// Canonical route set used wherever a program takes routes.
pub const ROUTES: &[(u32, u8, u64)] = &[(0x0A00_0000, 8, 1), (0xC0A8_0100, 24, 2)];

/// The canonical wiretap instance (one intercepted source, exfil on
/// port 31) — same routes, same public identity as [`ROUTES`]
/// forwarding.
pub fn canonical_rogue_wiretap() -> DataplaneProgram {
    programs::rogue_wiretap(ROUTES, &[0x0A00_0001], 31)
}

/// The canonical false-readings monitor (64 buckets, egress 1) — same
/// declared registers as the benign `flow_monitor(64, 1)`.
pub fn canonical_rogue_flow_monitor() -> DataplaneProgram {
    programs::rogue_flow_monitor(64, 1)
}

/// The canonical shadowed-blocklist ACL (advertised block of UDP 4444
/// dead behind a wildcard allow) — same routes and public identity as
/// the benign `acl`.
pub fn canonical_rogue_acl_shadow() -> DataplaneProgram {
    programs::rogue_acl_shadow(4444, ROUTES)
}

/// Every builtin as `(short name, program, is_rogue)`. Short names are
/// the CLI's `pda lint <name>` vocabulary.
pub fn builtins() -> Vec<(&'static str, DataplaneProgram, bool)> {
    vec![
        ("forwarding", programs::forwarding(ROUTES), false),
        (
            "firewall",
            programs::firewall(
                &[(0x0A00_0002, 32, 0, 0, None), (0, 0, 0, 0, Some(6))],
                ROUTES,
            ),
            false,
        ),
        ("acl", programs::acl(&[53, 123], ROUTES), false),
        (
            "load_balancer",
            programs::load_balancer(&[1, 2, 3, 4]),
            false,
        ),
        (
            "scrubber",
            programs::scrubber(&[(0x0A00_0000, 8)], 1, 7),
            false,
        ),
        ("c2_scanner", programs::c2_scanner(&[0xBEEF], 1, 7), false),
        ("flow_monitor", programs::flow_monitor(64, 1), false),
        ("rogue_flow_monitor", canonical_rogue_flow_monitor(), true),
        ("rogue_wiretap", canonical_rogue_wiretap(), true),
        ("rogue_acl_shadow", canonical_rogue_acl_shadow(), true),
    ]
}

/// Look up one canonical builtin by short name.
pub fn builtin(name: &str) -> Option<(DataplaneProgram, bool)> {
    builtins()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, p, rogue)| (p, rogue))
}

/// The short names, in corpus order.
pub fn names() -> Vec<&'static str> {
    builtins().into_iter().map(|(n, _, _)| n).collect()
}
