//! Shared IR inspection helpers: field read/write sets per action,
//! register access extraction, and parser path facts (reachability,
//! accept paths, must/may-extracted header sets).

use pda_dataplane::headers::HeaderDef;
use pda_dataplane::parser::{ParseState, ParserDef, Select};
use pda_dataplane::{Action, Primitive, Table};
use std::collections::{BTreeMap, BTreeSet};

/// `"ipv4.src"` → `"ipv4"`; a dotless field is its own prefix.
pub fn prefix(field: &str) -> &str {
    field.split('.').next().unwrap_or(field)
}

/// PHV fields an action reads (register index/value fields included —
/// they are PHV reads at execution time).
pub fn action_reads(a: &Action) -> Vec<&str> {
    let mut out = Vec::new();
    for p in &a.primitives {
        match p {
            Primitive::CopyField { src, .. } => out.push(src.as_str()),
            Primitive::AddToField { field, .. } => out.push(field.as_str()),
            Primitive::HashFields { fields, .. } => {
                out.extend(fields.iter().map(String::as_str));
            }
            Primitive::RegisterWrite {
                index_field,
                value_field,
                ..
            } => {
                out.push(index_field.as_str());
                out.push(value_field.as_str());
            }
            Primitive::RegisterRead { index_field, .. }
            | Primitive::RegisterIncr { index_field, .. } => out.push(index_field.as_str()),
            _ => {}
        }
    }
    out
}

/// PHV fields an action writes. `Forward`/`Drop` write the egress-port
/// metadata; `HashFields` writes `meta.hash` (see `actions::execute`).
pub fn action_writes(a: &Action) -> Vec<&str> {
    let mut out = Vec::new();
    for p in &a.primitives {
        match p {
            Primitive::SetField { field, .. } | Primitive::AddToField { field, .. } => {
                out.push(field.as_str())
            }
            Primitive::CopyField { dst, .. } | Primitive::RegisterRead { dst, .. } => {
                out.push(dst.as_str())
            }
            Primitive::HashFields { .. } => out.push(pda_dataplane::phv::meta::HASH),
            Primitive::Forward { .. } | Primitive::Drop => {
                out.push(pda_dataplane::phv::meta::EGRESS_PORT)
            }
            _ => {}
        }
    }
    out
}

/// Does the action decide the packet's fate (any `Forward` or `Drop`)?
pub fn action_decides(a: &Action) -> bool {
    a.primitives
        .iter()
        .any(|p| matches!(p, Primitive::Forward { .. } | Primitive::Drop))
}

/// Every action a table can run: the default plus each entry's.
pub fn table_actions(t: &Table) -> Vec<&Action> {
    let mut out = vec![&t.default_action];
    out.extend(t.entries.iter().map(|e| &e.action));
    out
}

/// A register access site.
#[derive(Clone, Debug)]
pub struct RegAccess<'a> {
    /// Register array name.
    pub reg: &'a str,
    /// PHV field supplying the index.
    pub index_field: &'a str,
    /// `true` for `RegisterWrite`/`RegisterIncr` (mutating).
    pub writes: bool,
}

/// All register accesses an action performs.
pub fn action_reg_accesses(a: &Action) -> Vec<RegAccess<'_>> {
    let mut out = Vec::new();
    for p in &a.primitives {
        match p {
            Primitive::RegisterWrite {
                reg, index_field, ..
            }
            | Primitive::RegisterIncr { reg, index_field } => out.push(RegAccess {
                reg,
                index_field,
                writes: true,
            }),
            Primitive::RegisterRead {
                reg, index_field, ..
            } => out.push(RegAccess {
                reg,
                index_field,
                writes: false,
            }),
            _ => {}
        }
    }
    out
}

/// Facts about a parse graph, computed once and shared by the parser,
/// header-validity, and def-use passes.
#[derive(Clone, Debug, Default)]
pub struct ParserFacts {
    /// States reachable from `start`.
    pub reachable: BTreeSet<String>,
    /// `(referencing state, missing target)` pairs; `("", start)` when
    /// the start state itself is missing.
    pub unknown_refs: Vec<(String, String)>,
    /// Does some path from `start` reach an accept?
    pub has_accept_path: bool,
    /// A state on a select cycle reachable from `start`, if any.
    pub cycle_state: Option<String>,
    /// Headers extracted on *some* accepting path (name → definition).
    pub may_extracted: BTreeMap<String, HeaderDef>,
    /// Headers extracted on *every* accepting path.
    pub must_extracted: BTreeSet<String>,
}

/// Successor state names of a select: all case targets plus the
/// default. An `On` with `default: None` additionally *accepts* when no
/// case matches (the parser's implicit-accept semantics).
fn successors(sel: &Select) -> Vec<&str> {
    match sel {
        Select::Accept => Vec::new(),
        Select::On { cases, default, .. } => {
            let mut out: Vec<&str> = cases.values().map(String::as_str).collect();
            if let Some(d) = default {
                out.push(d.as_str());
            }
            out
        }
    }
}

/// Can the parser stop *at* this state (explicit or implicit accept)?
fn accepts_here(sel: &Select) -> bool {
    match sel {
        Select::Accept => true,
        // No matching case + no default ⇒ `parse` returns with what it
        // has — an implicit accept for every uncovered selector value.
        Select::On { default, .. } => default.is_none(),
    }
}

/// Compute [`ParserFacts`] for a parse graph.
pub fn parser_facts(parser: &ParserDef) -> ParserFacts {
    let mut facts = ParserFacts::default();
    let states: BTreeMap<&str, &ParseState> =
        parser.states.iter().map(|s| (s.name.as_str(), s)).collect();

    if !states.contains_key(parser.start.as_str()) {
        facts
            .unknown_refs
            .push((String::new(), parser.start.clone()));
        return facts;
    }

    // Reachability + unknown references + cycle detection (iterative
    // DFS with colors: 0 unvisited, 1 on stack, 2 done).
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<(&str, usize)> = vec![(parser.start.as_str(), 0)];
    color.insert(parser.start.as_str(), 1);
    facts.reachable.insert(parser.start.clone());
    while let Some((name, edge)) = stack.pop() {
        let state = states[name];
        let succ = successors(&state.select);
        if edge < succ.len() {
            stack.push((name, edge + 1));
            let next = succ[edge];
            match states.get(next) {
                None => {
                    facts
                        .unknown_refs
                        .push((name.to_string(), next.to_string()));
                }
                Some(_) => match color.get(next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        facts.reachable.insert(next.to_string());
                        stack.push((next, 0));
                    }
                    1 => {
                        // Back edge: `next` is on the current DFS path.
                        facts.cycle_state.get_or_insert(next.to_string());
                    }
                    _ => {}
                },
            }
        } else {
            color.insert(name, 2);
        }
    }

    // Accepting-path enumeration for must/may extracted sets. Bounded
    // DFS: a state is visited at most once per path (cycles cut), so
    // path count is finite and tiny for realistic parse graphs.
    let mut on_path: Vec<&str> = Vec::new();
    let mut extracted: Vec<&str> = Vec::new();
    enumerate_paths(
        parser.start.as_str(),
        &states,
        &mut on_path,
        &mut extracted,
        &mut facts,
    );
    facts
}

fn enumerate_paths<'a>(
    name: &'a str,
    states: &BTreeMap<&'a str, &'a ParseState>,
    on_path: &mut Vec<&'a str>,
    extracted: &mut Vec<&'a str>,
    facts: &mut ParserFacts,
) {
    let Some(state) = states.get(name) else {
        return; // unknown target: already diagnosed, not an accept path
    };
    if on_path.contains(&name) {
        return; // cycle: cut this path
    }
    on_path.push(name);
    let pushed_header = if let Some(h) = &state.extract {
        extracted.push(h.name);
        facts
            .may_extracted
            .entry(h.name.to_string())
            .or_insert_with(|| h.clone());
        true
    } else {
        false
    };

    if accepts_here(&state.select) {
        let here: BTreeSet<String> = extracted.iter().map(|s| s.to_string()).collect();
        if facts.has_accept_path {
            facts.must_extracted = facts.must_extracted.intersection(&here).cloned().collect();
        } else {
            facts.must_extracted = here;
            facts.has_accept_path = true;
        }
    }
    for next in successors(&state.select) {
        enumerate_paths(next, states, on_path, extracted, facts);
    }

    if pushed_header {
        extracted.pop();
    }
    on_path.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_dataplane::standard_parser;

    #[test]
    fn standard_parser_facts() {
        let facts = parser_facts(&standard_parser());
        assert!(facts.has_accept_path);
        assert!(facts.cycle_state.is_none());
        assert!(facts.unknown_refs.is_empty());
        // Every header is conditionally extractable…
        for h in ["eth", "ipv4", "udp", "tcp", "pda", "sig"] {
            assert!(facts.may_extracted.contains_key(h), "may should have {h}");
        }
        // …but only Ethernet is guaranteed (non-IPv4 ethertypes accept
        // straight after `eth`).
        assert_eq!(
            facts.must_extracted.iter().cloned().collect::<Vec<_>>(),
            vec!["eth".to_string()]
        );
    }
}
