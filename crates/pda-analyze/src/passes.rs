//! The six analysis passes. Each takes the program plus shared
//! [`ParserFacts`](crate::ir::ParserFacts) and pushes [`Diagnostic`]s.
//!
//! Code plan (stable — appraisers and golden snapshots depend on it):
//!
//! | code   | severity | pass | finding |
//! |--------|----------|------|---------|
//! | PDA001 | warning  | parser | state unreachable from `start` |
//! | PDA002 | error    | parser | no accept path from `start` |
//! | PDA003 | error    | parser | select cycle reachable from `start` (runtime `ParseErr::Looping`) |
//! | PDA004 | error    | parser | reference to an undefined state (runtime `ParseErr::UnknownState`) |
//! | PDA101 | error    | headers | field not declared by its header |
//! | PDA102 | info     | headers | header not extracted on every parser path (silent zero default) |
//! | PDA201 | warning  | def-use | scratch field read but never defined (always zero) |
//! | PDA202 | info     | def-use | metadata field read relying on the zero default |
//! | PDA211 | error    | def-use | access to an undeclared register array |
//! | PDA212 | warning  | def-use | register index can exceed the array bound (silent no-op/zero) |
//! | PDA213 | warning  | def-use | register array touched from multiple stages (hardware race) |
//! | PDA301 | warning  | totality | a hit/miss path decides neither Forward nor Drop (egress defaults to 0) |
//! | PDA302 | error    | totality | Forward to a port outside the configured port set |
//! | PDA303 | info     | totality | inert table (no entries, no-op default) |
//! | PDA401 | error    | taint | flow-identifying data reaches a mirror/clone sink (second egress) |
//! | PDA402 | error    | taint | declared register array never written (severed observation path) |
//! | PDA501 | warning  | symbolic | table entry fully shadowed by higher-precedence entries (can never fire) |
//! | PDA502 | error    | symbolic | dead **Drop** entry — an advertised block that can never fire |
//! | PDA503 | info     | symbolic | default action unreachable (entries cover the whole key space) |

use crate::diag::{Diagnostic, Location, Severity};
use crate::ir::{
    action_decides, action_reads, action_reg_accesses, action_writes, parser_facts, prefix,
    table_actions, ParserFacts,
};
use crate::AnalyzeConfig;
use pda_dataplane::phv::meta;
use pda_dataplane::tables::KeyCell;
use pda_dataplane::{DataplaneProgram, Primitive};
use pda_netkat::sym::{Arena, Sp};
use std::collections::{BTreeMap, BTreeSet};

fn stage_loc(program: &DataplaneProgram, index: usize) -> Location {
    Location::Stage {
        index,
        table: program.stages[index].table.name.clone(),
    }
}

/// Pass 1 — parser state-machine checks (PDA001–PDA004).
pub fn parser_pass(program: &DataplaneProgram, facts: &ParserFacts, out: &mut Vec<Diagnostic>) {
    for (from, target) in &facts.unknown_refs {
        let (loc, subject) = if from.is_empty() {
            (Location::Program, target.clone())
        } else {
            (Location::Parser(from.clone()), target.clone())
        };
        out.push(Diagnostic {
            code: "PDA004",
            severity: Severity::Error,
            location: loc,
            subject,
            message: format!(
                "select target `{target}` is not a defined parser state; \
                 any packet taking this edge dies with ParseErr::UnknownState"
            ),
        });
    }
    for state in &program.parser.states {
        if !facts.reachable.contains(&state.name) {
            out.push(Diagnostic {
                code: "PDA001",
                severity: Severity::Warning,
                location: Location::Parser(state.name.clone()),
                subject: state.name.clone(),
                message: format!(
                    "parser state `{}` is unreachable from start state `{}`",
                    state.name, program.parser.start
                ),
            });
        }
    }
    if !facts.has_accept_path && facts.unknown_refs.is_empty() {
        out.push(Diagnostic {
            code: "PDA002",
            severity: Severity::Error,
            location: Location::Parser(program.parser.start.clone()),
            subject: program.parser.start.clone(),
            message: "no path from the start state reaches an accept; \
                      every packet is rejected by the parser"
                .into(),
        });
    }
    if let Some(state) = &facts.cycle_state {
        out.push(Diagnostic {
            code: "PDA003",
            severity: Severity::Error,
            location: Location::Parser(state.clone()),
            subject: state.clone(),
            message: format!(
                "select cycle through `{state}` is reachable from start; \
                 packets on it exhaust the parse budget (ParseErr::Looping)"
            ),
        });
    }
}

/// Pass 2 — header-validity dataflow (PDA101–PDA102). Classifies every
/// header-prefixed field a stage touches against the parser's must/may
/// extracted sets.
pub fn headers_pass(program: &DataplaneProgram, facts: &ParserFacts, out: &mut Vec<Diagnostic>) {
    for (i, stage) in program.stages.iter().enumerate() {
        // (field, is_write) pairs, deduped per stage.
        let mut touched: BTreeSet<(String, bool)> = BTreeSet::new();
        for col in &stage.table.key {
            touched.insert((col.field.clone(), false));
        }
        for a in table_actions(&stage.table) {
            for f in action_reads(a) {
                touched.insert((f.to_string(), false));
            }
            for f in action_writes(a) {
                touched.insert((f.to_string(), true));
            }
        }
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for (field, is_write) in touched {
            let p = prefix(&field);
            let Some(hdr) = facts.may_extracted.get(p) else {
                continue; // meta.* and scratch fields: def-use pass territory
            };
            if !reported.insert(field.clone()) {
                continue;
            }
            if !hdr.fields.iter().any(|f| hdr.slot(f.name) == field) {
                out.push(Diagnostic {
                    code: "PDA101",
                    severity: Severity::Error,
                    location: stage_loc(program, i),
                    subject: field.clone(),
                    message: format!(
                        "header `{p}` declares no field making up `{field}`; \
                         the slot is dead PHV space (reads are always zero)"
                    ),
                });
            } else if !facts.must_extracted.contains(p) {
                let verb = if is_write { "written" } else { "read" };
                out.push(Diagnostic {
                    code: "PDA102",
                    severity: Severity::Info,
                    location: stage_loc(program, i),
                    subject: field.clone(),
                    message: format!(
                        "`{field}` is {verb} but header `{p}` is not extracted on every \
                         parser path; on the other paths the slot holds the silent \
                         zero default (DESIGN.md: silent-default semantics)"
                    ),
                });
            }
        }
    }
}

/// Pass 3 — stage def-use hazards (PDA201/202/211/212/213).
pub fn defuse_pass(program: &DataplaneProgram, facts: &ParserFacts, out: &mut Vec<Diagnostic>) {
    // Fields with a possible definition before each stage: intrinsic
    // metadata seeded by the pipeline, then every header field the
    // parser may extract, then anything an earlier stage may write.
    let mut defined: BTreeSet<String> = BTreeSet::new();
    defined.insert(meta::INGRESS_PORT.to_string());
    for hdr in facts.may_extracted.values() {
        for f in &hdr.fields {
            defined.insert(hdr.slot(f.name));
        }
    }

    let declared: BTreeMap<&str, usize> = program
        .registers
        .iter()
        .map(|(n, s)| (n.as_str(), *s))
        .collect();
    // All possible definitions of a PHV field used as a register index:
    // `HashFields { modulo }` bounds it, `SetField { value }` pins it.
    let mut index_bounds: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for stage in &program.stages {
        for a in table_actions(&stage.table) {
            for p in &a.primitives {
                match p {
                    Primitive::HashFields { modulo, .. } if *modulo > 0 => {
                        index_bounds.entry(meta::HASH).or_default().push(modulo - 1)
                    }
                    Primitive::SetField { field, value } => {
                        index_bounds.entry(field).or_default().push(*value)
                    }
                    _ => {}
                }
            }
        }
    }

    // reg → stages touching it (for the cross-stage hazard check).
    let mut reg_stages: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();

    for (i, stage) in program.stages.iter().enumerate() {
        let mut reads: BTreeSet<String> = BTreeSet::new();
        for col in &stage.table.key {
            reads.insert(col.field.clone());
        }
        for a in table_actions(&stage.table) {
            for f in action_reads(a) {
                reads.insert(f.to_string());
            }
        }
        for field in reads {
            if defined.contains(&field) {
                continue;
            }
            let p = prefix(&field);
            if facts.may_extracted.contains_key(p) {
                continue; // undeclared header field: PDA101 already fired
            }
            if p == "meta" {
                out.push(Diagnostic {
                    code: "PDA202",
                    severity: Severity::Info,
                    location: stage_loc(program, i),
                    subject: field.clone(),
                    message: format!(
                        "metadata `{field}` is read but nothing writes it first; \
                         the read relies on the pinned zero default"
                    ),
                });
            } else {
                out.push(Diagnostic {
                    code: "PDA201",
                    severity: Severity::Warning,
                    location: stage_loc(program, i),
                    subject: field.clone(),
                    message: format!(
                        "`{field}` names no header, metadata, or earlier stage output; \
                         it always reads as zero"
                    ),
                });
            }
        }

        for a in table_actions(&stage.table) {
            for acc in action_reg_accesses(a) {
                reg_stages.entry(acc.reg.to_string()).or_default().insert(i);
                match declared.get(acc.reg) {
                    None => out.push(Diagnostic {
                        code: "PDA211",
                        severity: Severity::Error,
                        location: stage_loc(program, i),
                        subject: acc.reg.to_string(),
                        message: format!(
                            "register array `{}` is not declared by the program; \
                             writes are dropped and reads are zero",
                            acc.reg
                        ),
                    }),
                    Some(&size) => {
                        // Largest value the index field can provably take:
                        // max over its definitions, or 0 if never written.
                        let max_idx = index_bounds
                            .get(acc.index_field)
                            .map(|b| b.iter().copied().max().unwrap_or(0))
                            .unwrap_or(0);
                        if max_idx as usize >= size {
                            out.push(Diagnostic {
                                code: "PDA212",
                                severity: Severity::Warning,
                                location: stage_loc(program, i),
                                subject: format!("{}[{}]", acc.reg, acc.index_field),
                                message: format!(
                                    "index `{}` can reach {} but `{}` has {} slots; \
                                     out-of-range access is a silent no-op/zero",
                                    acc.index_field, max_idx, acc.reg, size
                                ),
                            });
                        }
                    }
                }
            }
        }
        for a in table_actions(&stage.table) {
            for f in action_writes(a) {
                defined.insert(f.to_string());
            }
        }
    }

    for (reg, stages) in &reg_stages {
        if stages.len() > 1 {
            let list: Vec<String> = stages.iter().map(|s| s.to_string()).collect();
            out.push(Diagnostic {
                code: "PDA213",
                severity: Severity::Warning,
                location: Location::Program,
                subject: reg.clone(),
                message: format!(
                    "register array `{}` is touched from stages [{}]; on real hardware \
                     a register binds to one stage and cross-stage access races",
                    reg,
                    list.join(", ")
                ),
            });
        }
    }
}

/// Pass 4 — action totality (PDA301/302/303).
pub fn totality_pass(
    program: &DataplaneProgram,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    // A fall-through path exists iff every stage has some hit/miss
    // variant that neither forwards nor drops.
    let mut undecided_witness: Vec<String> = Vec::new();
    for stage in &program.stages {
        match table_actions(&stage.table)
            .iter()
            .find(|a| !action_decides(a))
        {
            Some(a) => undecided_witness.push(format!("{}:{}", stage.table.name, a.name)),
            None => {
                undecided_witness.clear();
                break;
            }
        }
    }
    if !program.stages.is_empty() && !undecided_witness.is_empty() {
        out.push(Diagnostic {
            code: "PDA301",
            severity: Severity::Warning,
            location: Location::Program,
            subject: undecided_witness.join(","),
            message: format!(
                "the hit/miss combination [{}] reaches the deparser without any \
                 Forward or Drop; egress falls through to the zero default (port 0)",
                undecided_witness.join(", ")
            ),
        });
    }

    for (i, stage) in program.stages.iter().enumerate() {
        if let Some(known) = &config.known_ports {
            for a in table_actions(&stage.table) {
                for p in &a.primitives {
                    if let Primitive::Forward { port } = p {
                        if !known.contains(port) {
                            out.push(Diagnostic {
                                code: "PDA302",
                                severity: Severity::Error,
                                location: stage_loc(program, i),
                                subject: port.to_string(),
                                message: format!(
                                    "action `{}` forwards to port {port}, which is not \
                                     in the declared port set",
                                    a.name
                                ),
                            });
                        }
                    }
                }
            }
        }
        let inert = stage.table.entries.is_empty()
            && stage
                .table
                .default_action
                .primitives
                .iter()
                .all(|p| matches!(p, Primitive::NoOp));
        if inert {
            out.push(Diagnostic {
                code: "PDA303",
                severity: Severity::Info,
                location: stage_loc(program, i),
                subject: stage.table.name.clone(),
                message: format!(
                    "table `{}` has no entries and a no-op default; the stage is inert",
                    stage.table.name
                ),
            });
        }
    }
}

/// Flow-identifying PHV slots: the P4BID-style taint *sources*.
pub const TAINT_SOURCES: &[&str] = &[
    "eth.src",
    "eth.dst",
    "ipv4.src",
    "ipv4.dst",
    "tcp.sport",
    "tcp.dport",
    "udp.sport",
    "udp.dport",
];

/// Is this PHV slot a mirror/clone *sink* — metadata that steers a
/// second copy of the packet to an extra egress?
pub fn is_mirror_sink(field: &str) -> bool {
    let Some(rest) = field.strip_prefix("meta.") else {
        return false;
    };
    ["mirror", "clone", "tap", "span", "copy_to"]
        .iter()
        .any(|k| rest.contains(k))
}

/// Pass 5 — P4BID-style taint lint (PDA401/402).
///
/// Sources are the flow-identifying fields in [`TAINT_SOURCES`]; taint
/// propagates through copies, arithmetic, and hashes (explicit flows)
/// and through table keys into the selected actions (implicit flows).
/// Sinks are mirror/clone metadata slots ([`is_mirror_sink`]): landing
/// tainted data — or any write under tainted control — there means the
/// program steers per-flow traffic to a second egress (the wiretap
/// shape, PDA401). The dual direction is PDA402: a register array the
/// program declares (and therefore attests as register state) that no
/// action ever writes — the observation path from traffic to attested
/// state is severed, so its readings are statically false (the rogue
/// monitor shape).
pub fn taint_pass(program: &DataplaneProgram, out: &mut Vec<Diagnostic>) {
    let mut tainted: BTreeSet<String> = TAINT_SOURCES.iter().map(|s| s.to_string()).collect();
    let mut tainted_regs: BTreeSet<String> = BTreeSet::new();
    let mut written_regs: BTreeSet<String> = BTreeSet::new();

    for (i, stage) in program.stages.iter().enumerate() {
        let control_tainted = stage
            .table
            .key
            .iter()
            .any(|col| tainted.contains(&col.field));
        // Fixpoint-free single sweep is sound here: stages execute in
        // order and taint only ever grows within a stage.
        let mut new_taint: BTreeSet<String> = BTreeSet::new();
        let mut sink_hits: BTreeSet<(String, String)> = BTreeSet::new();
        for a in table_actions(&stage.table) {
            for p in &a.primitives {
                let (dst, data_tainted): (Option<&str>, bool) = match p {
                    Primitive::SetField { field, .. } => (Some(field), false),
                    Primitive::CopyField { dst, src } => (Some(dst), tainted.contains(src)),
                    Primitive::AddToField { field, .. } => {
                        (Some(field), tainted.contains(field.as_str()))
                    }
                    Primitive::HashFields { fields, .. } => {
                        (Some(meta::HASH), fields.iter().any(|f| tainted.contains(f)))
                    }
                    Primitive::RegisterWrite {
                        reg, value_field, ..
                    } => {
                        written_regs.insert(reg.clone());
                        if tainted.contains(value_field) || control_tainted {
                            tainted_regs.insert(reg.clone());
                        }
                        (None, false)
                    }
                    Primitive::RegisterIncr { reg, .. } => {
                        written_regs.insert(reg.clone());
                        if control_tainted {
                            tainted_regs.insert(reg.clone());
                        }
                        (None, false)
                    }
                    Primitive::RegisterRead { reg, dst, .. } => {
                        (Some(dst), tainted_regs.contains(reg.as_str()))
                    }
                    _ => (None, false),
                };
                if let Some(dst) = dst {
                    if data_tainted || control_tainted {
                        new_taint.insert(dst.to_string());
                    }
                    if is_mirror_sink(dst) && (data_tainted || control_tainted) {
                        sink_hits.insert((dst.to_string(), a.name.clone()));
                    }
                }
            }
        }
        tainted.extend(new_taint);
        for (sink, action) in sink_hits {
            out.push(Diagnostic {
                code: "PDA401",
                severity: Severity::Error,
                location: stage_loc(program, i),
                subject: sink.clone(),
                message: format!(
                    "action `{action}` routes flow-identifying traffic to mirror sink \
                     `{sink}`: a second egress copy selected by tainted data \
                     (the wiretap shape; cf. P4BID)"
                ),
            });
        }
    }

    for (reg, size) in &program.registers {
        if !written_regs.contains(reg) {
            out.push(Diagnostic {
                code: "PDA402",
                severity: Severity::Error,
                location: Location::Program,
                subject: reg.clone(),
                message: format!(
                    "register array `{reg}` ({size} slots) is declared — and attested \
                     as register state — but no action ever writes it; the observation \
                     path from traffic to attested state is severed, so its readings \
                     are statically false"
                ),
            });
        }
    }
}

/// Symbolic image of one key cell over the column's dimension, or
/// `None` when the cell is not an equality constraint over the full
/// 64-bit value (LPM and partial ternary masks).
fn cell_sp(ar: &mut Arena, col: u16, cell: &KeyCell) -> Option<Sp> {
    match cell {
        KeyCell::Exact(v) => Some(ar.sp_test(col, *v)),
        KeyCell::Ternary { mask, .. } if *mask == 0 => Some(Sp::FULL),
        KeyCell::Ternary { value, mask } if *mask == u64::MAX => Some(ar.sp_test(col, *value)),
        KeyCell::Any => Some(Sp::FULL),
        KeyCell::Lpm { .. } | KeyCell::Ternary { .. } => None,
    }
}

/// Pass 6 — symbolic table-rule reachability (PDA501–PDA503), built on
/// `pda-netkat`'s hash-consed symbolic packet sets: the table's key
/// columns span a packet space (one dimension per column), each entry's
/// guard denotes a set in it, and an entry whose guard is contained in
/// the union of all higher-precedence guards can never fire.
///
/// Precedence mirrors `Table::lookup`: entry `j` dominates entry `i`
/// iff `(priority_j, specificity_j) > (priority_i, specificity_i)`, or
/// the pairs are equal and `j` was inserted earlier.
///
/// Soundness under partial representability: guards outside the
/// equality fragment (LPM, partial ternary masks) contribute the
/// **empty** set to every shadow/cover union (an under-approximation of
/// what they match), and entries containing them are never themselves
/// claimed dead. Both directions therefore only ever *miss* findings,
/// never fabricate them — required, since PDA502 feeds the
/// `RequireLintClean` appraisal policy.
pub fn symbolic_pass(program: &DataplaneProgram, out: &mut Vec<Diagnostic>) {
    for (i, stage) in program.stages.iter().enumerate() {
        let table = &stage.table;
        if table.entries.is_empty() {
            continue;
        }
        let mut ar = Arena::new(table.key.len() as u16);
        let guards: Vec<Option<Sp>> = table
            .entries
            .iter()
            .map(|e| {
                let mut g = Sp::FULL;
                for (col, cell) in e.key.iter().enumerate() {
                    let c = cell_sp(&mut ar, col as u16, cell)?;
                    g = ar.sp_intersect(g, c);
                }
                Some(g)
            })
            .collect();
        let rank: Vec<(i32, u32)> = table
            .entries
            .iter()
            .map(|e| (e.priority, e.key.iter().map(KeyCell::specificity).sum()))
            .collect();

        for (idx, e) in table.entries.iter().enumerate() {
            let Some(g) = guards[idx] else {
                continue; // not claimable without an exact guard
            };
            let mut shadow = Sp::EMPTY;
            for j in 0..table.entries.len() {
                let dominates = rank[j] > rank[idx] || (rank[j] == rank[idx] && j < idx);
                if j != idx && dominates {
                    if let Some(gj) = guards[j] {
                        shadow = ar.sp_union(shadow, gj);
                    }
                }
            }
            if ar.sp_diff(g, shadow) == Sp::EMPTY {
                let drops = e
                    .action
                    .primitives
                    .iter()
                    .any(|p| matches!(p, Primitive::Drop));
                if drops {
                    out.push(Diagnostic {
                        code: "PDA502",
                        severity: Severity::Error,
                        location: stage_loc(program, i),
                        subject: format!("{}[{idx}]", table.name),
                        message: format!(
                            "entry {idx} of table `{}` (action `{}`) drops, but every \
                             packet it matches is claimed first by higher-precedence \
                             entries: the advertised block is symbolically dead and \
                             can never fire",
                            table.name, e.action.name
                        ),
                    });
                } else {
                    out.push(Diagnostic {
                        code: "PDA501",
                        severity: Severity::Warning,
                        location: stage_loc(program, i),
                        subject: format!("{}[{idx}]", table.name),
                        message: format!(
                            "entry {idx} of table `{}` (action `{}`) is fully shadowed \
                             by higher-precedence entries and can never fire",
                            table.name, e.action.name
                        ),
                    });
                }
            }
        }

        // PDA503: the default action can fire only on packets no entry
        // matches; if representable guards already cover the whole key
        // space, the default is unreachable. Skipped for no-op defaults
        // (nothing of substance is lost).
        let default_noop = table
            .default_action
            .primitives
            .iter()
            .all(|p| matches!(p, Primitive::NoOp));
        if !default_noop {
            let mut cover = Sp::EMPTY;
            for g in guards.iter().flatten() {
                cover = ar.sp_union(cover, *g);
            }
            if cover == Sp::FULL {
                out.push(Diagnostic {
                    code: "PDA503",
                    severity: Severity::Info,
                    location: stage_loc(program, i),
                    subject: table.name.clone(),
                    message: format!(
                        "the entries of table `{}` cover the whole key space; its \
                         default action `{}` is unreachable",
                        table.name, table.default_action.name
                    ),
                });
            }
        }
    }
}

/// Run every pass over `program` and return the sorted diagnostics.
pub fn run_all(program: &DataplaneProgram, config: &AnalyzeConfig) -> Vec<Diagnostic> {
    let facts = parser_facts(&program.parser);
    let mut out = Vec::new();
    parser_pass(program, &facts, &mut out);
    headers_pass(program, &facts, &mut out);
    defuse_pass(program, &facts, &mut out);
    totality_pass(program, config, &mut out);
    taint_pass(program, &mut out);
    symbolic_pass(program, &mut out);
    out.sort_by(|a, b| (a.code, &a.location, &a.subject).cmp(&(b.code, &b.location, &b.subject)));
    out
}
