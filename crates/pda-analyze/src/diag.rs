//! Diagnostic types: severity lattice, source locations, and the
//! [`AnalysisReport`] whose digest becomes attestation evidence.

use pda_crypto::digest::Digest;
use pda_telemetry::json::Json;
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`, so policy
/// thresholds (`RequireLintClean { max_severity }` in `pda-ra`) can use
/// plain comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Behavior is well-defined but relies on pinned silent defaults
    /// (see DESIGN.md "Silent-default semantics"); worth knowing, never
    /// blocking.
    Info,
    /// Likely a program bug or a hardware-portability hazard.
    Warning,
    /// The program is broken or actively hostile.
    Error,
}

impl Severity {
    /// Stable lowercase name (used in JSON and in golden snapshots).
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the stable name back (for CLI flags).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the program a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// A parser state (by name).
    Parser(String),
    /// A match-action stage (index + table name).
    Stage {
        /// Stage index in `DataplaneProgram::stages`.
        index: usize,
        /// The stage's table name.
        table: String,
    },
    /// The program as a whole (cross-stage findings).
    Program,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Parser(state) => write!(f, "parser:{state}"),
            Location::Stage { index, table } => write!(f, "stage[{index}]:{table}"),
            Location::Program => write!(f, "program"),
        }
    }
}

/// One analyzer finding. `code` is stable across releases (PDA001…);
/// `subject` names the field/register/state/port concerned so golden
/// snapshots stay meaningful without pinning prose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `"PDA401"`.
    pub code: &'static str,
    /// Severity on the `Info < Warning < Error` lattice.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// The IR object concerned (field, register, state, port…).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The snapshot line: everything stable, nothing prose.
    pub fn snapshot_line(&self) -> String {
        format!(
            "{} {} {} {}",
            self.code, self.severity, self.location, self.subject
        )
    }

    /// JSON object via the telemetry codec.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".into(), Json::Str(self.code.into())),
            ("severity".into(), Json::Str(self.severity.name().into())),
            ("location".into(), Json::Str(self.location.to_string())),
            ("subject".into(), Json::Str(self.subject.clone())),
            ("message".into(), Json::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({}): {}",
            self.code, self.severity, self.location, self.subject, self.message
        )
    }
}

/// The full analyzer output for one program.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Program name (e.g. `forward_v2.p4`).
    pub program: String,
    /// The program digest the report speaks about — binds the verdict
    /// to exactly one program version.
    pub program_digest: Digest,
    /// All findings, sorted by (code, location, subject).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Worst severity present, or `None` for a spotless program.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// `true` when no finding is *worse* than `max_tolerated`.
    pub fn clean_at(&self, max_tolerated: Severity) -> bool {
        self.worst().is_none_or(|w| w <= max_tolerated)
    }

    /// The **lint verdict digest**: a canonical hash over the program
    /// digest and every finding's stable parts (code, severity,
    /// location, subject — prose excluded so wording tweaks don't churn
    /// evidence). This is what a PERA switch records alongside the
    /// program digest, and what an appraiser compares against an
    /// enrolled golden verdict.
    pub fn verdict_digest(&self) -> Digest {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"pda-analyze-verdict\0");
        bytes.extend_from_slice(self.program_digest.as_bytes());
        for d in &self.diagnostics {
            bytes.extend_from_slice(d.snapshot_line().as_bytes());
            bytes.push(0);
        }
        Digest::of(&bytes)
    }

    /// JSON object: program identity, verdict digest, severity counts,
    /// and the full diagnostic list.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("program".into(), Json::Str(self.program.clone())),
            (
                "program_digest".into(),
                Json::Str(self.program_digest.to_hex()),
            ),
            (
                "verdict_digest".into(),
                Json::Str(self.verdict_digest().to_hex()),
            ),
            (
                "worst".into(),
                match self.worst() {
                    Some(w) => Json::Str(w.name().into()),
                    None => Json::Null,
                },
            ),
            (
                "counts".into(),
                Json::Obj(vec![
                    ("info".into(), Json::UInt(self.count(Severity::Info) as u64)),
                    (
                        "warning".into(),
                        Json::UInt(self.count(Severity::Warning) as u64),
                    ),
                    (
                        "error".into(),
                        Json::UInt(self.count(Severity::Error) as u64),
                    ),
                ]),
            ),
            (
                "diagnostics".into(),
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_lattice_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn verdict_digest_ignores_prose_but_not_structure() {
        let base = AnalysisReport {
            program: "p".into(),
            program_digest: Digest::of(b"p"),
            diagnostics: vec![Diagnostic {
                code: "PDA401",
                severity: Severity::Error,
                location: Location::Program,
                subject: "meta.mirror_to".into(),
                message: "one wording".into(),
            }],
        };
        let mut reworded = base.clone();
        reworded.diagnostics[0].message = "another wording".into();
        assert_eq!(base.verdict_digest(), reworded.verdict_digest());

        let mut moved = base.clone();
        moved.diagnostics[0].subject = "meta.clone_to".into();
        assert_ne!(base.verdict_digest(), moved.verdict_digest());

        let clean = AnalysisReport {
            diagnostics: vec![],
            ..base.clone()
        };
        assert_ne!(base.verdict_digest(), clean.verdict_digest());
        assert_eq!(clean.worst(), None);
        assert!(clean.clean_at(Severity::Info));
        assert!(base.clean_at(Severity::Error));
        assert!(!base.clean_at(Severity::Warning));
    }
}
