//! # pda-analyze
//!
//! A static analyzer over the dataplane IR — the "appraise the
//! program, not just its hash" half of the paper's argument. Golden
//! digests (UC1) catch *unknown* programs; this crate judges what a
//! program *does*, so a rogue program is rejected even when its hash
//! has never been seen before and no blacklist entry exists.
//!
//! Six passes over [`DataplaneProgram`] (see [`passes`] for the full
//! diagnostic-code table):
//!
//! 1. **Parser state-machine checks** — reachability, accept-path
//!    existence, termination (no select cycles), dangling state refs.
//! 2. **Header-validity dataflow** — use-before-extract: PHV accesses
//!    on headers not guaranteed extracted on every parser path.
//! 3. **Stage def-use hazards** — fields and registers read before any
//!    possible definition; register index bounds; cross-stage register
//!    sharing that races on real hardware.
//! 4. **Action totality** — hit/miss paths that never decide the
//!    packet's fate, forwards to undeclared ports, inert tables.
//! 5. **P4BID-style taint lint** — flow-identifying fields as sources,
//!    mirror/clone metadata as sinks; fires on the `rogue_*` builtins
//!    and stays quiet on every benign one.
//! 6. **Symbolic table reachability** — entry guards as hash-consed
//!    symbolic packet sets (`pda-netkat`'s SP engine): entries fully
//!    shadowed by higher-precedence entries, dead `Drop` rules
//!    (advertised blocks that can never fire), unreachable defaults.
//!
//! The sorted findings hash to a **lint verdict digest**
//! ([`AnalysisReport::verdict_digest`]) that a PERA switch records
//! alongside the program digest, making semantic analysis an
//! attestable evidence level, and `pda-ra`'s `RequireLintClean` policy
//! atom turns the report into an appraisal verdict.

pub mod corpus;
pub mod diag;
pub mod ir;
pub mod passes;

pub use diag::{AnalysisReport, Diagnostic, Location, Severity};
use pda_dataplane::DataplaneProgram;
use std::collections::BTreeSet;

/// Knobs for the analyzer.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeConfig {
    /// When set, any `Forward` to a port outside this set is PDA302.
    /// `None` (the default) disables the check — the appraiser usually
    /// doesn't know the deployment's port map.
    pub known_ports: Option<BTreeSet<u64>>,
}

impl AnalyzeConfig {
    /// Enable the PDA302 port check for the given set.
    pub fn with_known_ports(mut self, ports: impl IntoIterator<Item = u64>) -> AnalyzeConfig {
        self.known_ports = Some(ports.into_iter().collect());
        self
    }
}

/// Run every pass over `program` under `config`.
pub fn analyze(program: &DataplaneProgram, config: &AnalyzeConfig) -> AnalysisReport {
    AnalysisReport {
        program: program.name.clone(),
        program_digest: program.digest(),
        diagnostics: passes::run_all(program, config),
    }
}

/// [`analyze`] with the default config.
pub fn analyze_default(program: &DataplaneProgram) -> AnalysisReport {
    analyze(program, &AnalyzeConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_dataplane::programs;

    /// The headline property: rogue programs carry an Error-severity
    /// taint or symbolic-reachability diagnostic, benign ones stay
    /// below Warning — with zero hash-list maintenance.
    #[test]
    fn rogue_benign_separation() {
        for (name, program, rogue) in corpus::builtins() {
            let report = analyze_default(&program);
            if rogue {
                assert!(
                    report
                        .diagnostics
                        .iter()
                        .any(
                            |d| (d.code.starts_with("PDA4") || d.code.starts_with("PDA5"))
                                && d.severity == Severity::Error
                        ),
                    "{name} must carry an Error-level semantic diagnostic, got: {:?}",
                    report.diagnostics
                );
            } else {
                assert!(
                    report.clean_at(Severity::Info),
                    "{name} must stay below Warning, got: {:?}",
                    report
                        .diagnostics
                        .iter()
                        .filter(|d| d.severity > Severity::Info)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn wiretap_fires_the_mirror_sink_lint() {
        let report = analyze_default(&corpus::canonical_rogue_wiretap());
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PDA401")
            .expect("wiretap must trip PDA401");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(hit.subject, "meta.mirror_to");
    }

    #[test]
    fn rogue_monitor_fires_the_severed_register_lint() {
        let report = analyze_default(&corpus::canonical_rogue_flow_monitor());
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PDA402")
            .expect("rogue monitor must trip PDA402");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(hit.subject, "flow_counts");
        // The benign twin — same declared registers, same stage shape —
        // is quiet: the analyzer separates them semantically.
        let benign = analyze_default(&programs::flow_monitor(64, 1));
        assert!(benign.clean_at(Severity::Info));
    }

    #[test]
    fn shadowed_blocklist_fires_the_dead_rule_lint() {
        let report = analyze_default(&corpus::canonical_rogue_acl_shadow());
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PDA502")
            .expect("shadowed ACL must trip PDA502");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(hit.subject, "acl_ports[1]");
        // The benign twin — same public identity, genuinely enforcing
        // entries — carries no PDA5xx above Info.
        let benign = analyze_default(&programs::acl(&[53, 123], corpus::ROUTES));
        assert!(benign.clean_at(Severity::Info));
    }

    #[test]
    fn dead_rule_diagnostic_changes_the_verdict_digest() {
        // The attested lint verdict must move when a dead-rule
        // diagnostic appears: an appraiser pinning the benign ACL's
        // verdict digest cannot be replayed against the rogue.
        let benign = analyze_default(&programs::acl(&[53, 123], corpus::ROUTES));
        let rogue = analyze_default(&corpus::canonical_rogue_acl_shadow());
        assert!(rogue.diagnostics.iter().any(|d| d.code == "PDA502"));
        assert_ne!(benign.verdict_digest(), rogue.verdict_digest());
    }

    #[test]
    fn shadowing_requires_dominance_not_just_overlap() {
        // Two overlapping entries where the later one is *more*
        // specific: nothing is dead — the specific entry wins its
        // packets despite lower insertion order.
        use pda_dataplane::actions::Action;
        use pda_dataplane::parser::standard_parser;
        use pda_dataplane::pipeline::{DataplaneProgram, Stage};
        use pda_dataplane::tables::{Entry, KeyCell, KeyCol, MatchKind, Table};
        let mut table = Table::new(
            "t",
            vec![KeyCol {
                field: "udp.dport".into(),
                kind: MatchKind::Ternary,
            }],
            Action::nop(),
        );
        table
            .insert(Entry {
                key: vec![KeyCell::Any],
                priority: 0,
                action: Action::fwd(1),
            })
            .unwrap();
        table
            .insert(Entry {
                key: vec![KeyCell::Ternary {
                    value: 53,
                    mask: u64::MAX,
                }],
                priority: 0,
                action: Action::drop_(),
            })
            .unwrap();
        let prog = DataplaneProgram {
            name: "spec.p4".into(),
            version: "1".into(),
            parser: standard_parser(),
            stages: vec![Stage { table }],
            registers: vec![],
        };
        let report = analyze_default(&prog);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code.starts_with("PDA5") && d.severity > Severity::Info),
            "specificity dominance keeps the drop entry live: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn port_check_is_config_gated() {
        let prog = programs::forwarding(&[(0x0A00_0000, 8, 1), (0xC0A8_0100, 24, 9)]);
        assert!(analyze_default(&prog).clean_at(Severity::Info));
        let cfg = AnalyzeConfig::default().with_known_ports([1, 2, 3]);
        let report = analyze(&prog, &cfg);
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PDA302")
            .expect("port 9 is outside the declared set");
        assert_eq!(hit.subject, "9");
        assert_eq!(hit.severity, Severity::Error);
    }

    #[test]
    fn verdict_digest_tracks_program_changes() {
        let a = analyze_default(&programs::flow_monitor(64, 1));
        let b = analyze_default(&programs::flow_monitor(128, 1));
        assert_ne!(a.verdict_digest(), b.verdict_digest());
        let again = analyze_default(&programs::flow_monitor(64, 1));
        assert_eq!(a.verdict_digest(), again.verdict_digest());
    }
}
