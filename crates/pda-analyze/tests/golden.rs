//! Golden-diagnostics snapshot: the full analyzer output (codes +
//! locations + subjects, prose excluded) for every builtin program.
//! Any analyzer or program change shows up here as a reviewable diff —
//! update the snapshot deliberately, never mechanically.

/// One block per corpus program: `# <short name> (<program name>)`
/// followed by one `snapshot_line()` per diagnostic, sorted.
const GOLDEN: &str = "\
# forwarding (forward_v2.p4)
PDA102 info stage[0]:ipv4_lpm ipv4.dst
PDA102 info stage[0]:ipv4_lpm ipv4.ttl

# firewall (firewall_v5.p4)
PDA102 info stage[0]:fw_acl ipv4.dst
PDA102 info stage[0]:fw_acl ipv4.proto
PDA102 info stage[0]:fw_acl ipv4.src
PDA102 info stage[1]:ipv4_lpm ipv4.dst
PDA102 info stage[1]:ipv4_lpm ipv4.ttl

# acl (ACL_v3.p4)
PDA102 info stage[0]:acl_ports udp.dport
PDA102 info stage[1]:ipv4_lpm ipv4.dst
PDA102 info stage[1]:ipv4_lpm ipv4.ttl

# load_balancer (lb_v1.p4)
PDA102 info stage[0]:lb_hash ipv4.dst
PDA102 info stage[0]:lb_hash ipv4.proto
PDA102 info stage[0]:lb_hash ipv4.src
PDA102 info stage[0]:lb_hash udp.dport
PDA102 info stage[0]:lb_hash udp.sport

# scrubber (scrubber_v1.p4)
PDA102 info stage[0]:scrub ipv4.dscp
PDA102 info stage[0]:scrub ipv4.src

# c2_scanner (c2scan_v1.p4)
PDA102 info stage[0]:c2_signatures sig.window
PDA202 info stage[0]:c2_signatures meta.zero

# flow_monitor (monitor_v1.p4)
PDA102 info stage[0]:flow_hash ipv4.dst
PDA102 info stage[0]:flow_hash ipv4.proto
PDA102 info stage[0]:flow_hash ipv4.src

# rogue_flow_monitor (monitor_v1.p4)
PDA102 info stage[0]:flow_hash ipv4.dst
PDA102 info stage[0]:flow_hash ipv4.proto
PDA102 info stage[0]:flow_hash ipv4.src
PDA402 error program flow_counts

# rogue_wiretap (forward_v2.p4)
PDA102 info stage[0]:ipv4_lpm ipv4.dst
PDA102 info stage[0]:ipv4_lpm ipv4.ttl
PDA102 info stage[1]:lawful_intercept ipv4.src
PDA401 error stage[1]:lawful_intercept meta.mirror_to

# rogue_acl_shadow (ACL_v3.p4)
PDA102 info stage[0]:acl_ports udp.dport
PDA102 info stage[1]:ipv4_lpm ipv4.dst
PDA102 info stage[1]:ipv4_lpm ipv4.ttl
PDA502 error stage[0]:acl_ports acl_ports[1]
";

fn render() -> String {
    let mut out = String::new();
    for (name, prog, _) in pda_analyze::corpus::builtins() {
        let report = pda_analyze::analyze_default(&prog);
        out.push_str(&format!("# {name} ({})\n", prog.name));
        for d in &report.diagnostics {
            out.push_str(&d.snapshot_line());
            out.push('\n');
        }
        out.push('\n');
    }
    // Single trailing newline.
    out.truncate(out.trim_end().len());
    out.push('\n');
    out
}

#[test]
fn diagnostics_match_the_golden_snapshot() {
    let actual = render();
    if actual != GOLDEN {
        // A line diff beats one giant assert_eq! dump.
        for (i, (a, g)) in actual.lines().zip(GOLDEN.lines()).enumerate() {
            if a != g {
                panic!(
                    "snapshot diverges at line {}:\n  golden: {g}\n  actual: {a}",
                    i + 1
                );
            }
        }
        panic!(
            "snapshot length changed ({} vs {} lines):\n{actual}",
            actual.lines().count(),
            GOLDEN.lines().count()
        );
    }
}

/// The acceptance criterion, stated directly over the snapshot corpus:
/// every rogue builtin trips an Error-severity taint (PDA4xx) or
/// symbolic-reachability (PDA5xx) diagnostic, every benign builtin
/// emits nothing at Warning or above.
#[test]
fn rogues_error_benigns_below_warning() {
    use pda_analyze::Severity;
    for (name, prog, rogue) in pda_analyze::corpus::builtins() {
        let report = pda_analyze::analyze_default(&prog);
        if rogue {
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(
                        |d| (d.code.starts_with("PDA4") || d.code.starts_with("PDA5"))
                            && d.severity >= Severity::Error
                    ),
                "{name}: expected an Error-level PDA4xx/PDA5xx diagnostic"
            );
        } else {
            assert!(
                report.clean_at(Severity::Info),
                "{name}: benign program must stay below Warning"
            );
        }
    }
}
