//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the benchmark-facing API it uses: [`Criterion`] with
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `benchmark_group` with `bench_with_input` / `throughput` / `finish`,
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a straightforward wall-clock estimator: warm up for the
//! configured duration, then time batches until the measurement budget is
//! spent and report the median per-iteration time across samples. There is
//! no statistical analysis, plotting, or HTML report — just stable,
//! comparable numbers on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the CLI filter argument `cargo bench -- <substring>` passes
        // through, and ignore harness flags like `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id, throughput);
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation echoed in reports.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(&full, self.throughput.as_ref(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&full, self.throughput.as_ref(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where the real crate takes
/// `impl IntoBenchmarkId`.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        BenchmarkIdOrStr(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        BenchmarkIdOrStr(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrStr(id.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also estimates the per-iteration cost so each sample can
        // run enough iterations to dominate timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<&Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{id:<48} (no measurement — closure never called iter)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[sorted.len() / 20];
        let hi = sorted[sorted.len() - 1 - sorted.len() / 20];
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>10.1} MiB/s",
                    *n as f64 / (median * 1e-9) / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", *n as f64 / (median * 1e-9))
            }
            None => String::new(),
        };
        println!(
            "{id:<48} time: [{} {} {}]{rate}",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a group runner, mirroring the real
/// macro's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Criterion group runner (shim-generated).
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(3),
            filter: None,
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = false;
        fast_criterion().bench_function("t", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_with_inputs_and_throughput() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            seen = n;
            b.iter(|| n * 2);
        });
        g.finish();
        assert_eq!(seen, 64);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
