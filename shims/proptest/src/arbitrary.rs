//! `any::<T>()` strategies for the primitive types the tests draw from.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy for an [`Arbitrary`] type (what `any::<T>()` returns).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_domain_edges_eventually() {
        let mut rng = TestRng::from_seed(11);
        let s = any::<u8>();
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..4096 {
            let v = s.gen_value(&mut rng);
            seen_high |= v > 200;
            seen_low |= v < 50;
        }
        assert!(seen_high && seen_low);
    }

    #[test]
    fn arrays_fill_every_byte_eventually() {
        let mut rng = TestRng::from_seed(12);
        let v: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        assert!(v.iter().any(|&b| b != 0));
    }
}
