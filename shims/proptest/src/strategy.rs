//! The `Strategy` trait and the combinators the workspace's tests use:
//! `prop_map`, `prop_recursive`, `boxed`, unions, `Just`, integer ranges,
//! tuples, and `&str` regex-lite string strategies.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A generator of values. Unlike the real crate there is no value tree and
/// no shrinking: a strategy simply produces a value from an RNG.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategies. `depth` bounds the nesting; the size and branch
    /// hints are accepted for signature compatibility but advisory here. At
    /// each level the result is an even mix of the leaf strategy and one
    /// application of `recurse` to the shallower mix, so generated values
    /// range from bare leaves to `depth`-deep structures.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

/// Strategy that maps generated values through a function.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Strategy producing clones of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equally weighted choice between arms (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// `&'static str` patterns act as regex-lite string strategies
/// (e.g. `"[a-z][a-z0-9_]{0,8}"`).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let a = (0u8..=32).gen_value(&mut rng);
            assert!(a <= 32);
            let b = (1usize..10).gen_value(&mut rng);
            assert!((1..10).contains(&b));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(4);
        let s = Union::new(vec![
            Just(1u32).boxed(),
            (5u32..8).prop_map(|v| v * 10).boxed(),
        ]);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v == 1 || (50..80).contains(&v), "{v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 16, "leaf out of strategy range: {v}");
                    0
                }
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::from_seed(5);
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            let d = depth(&t);
            assert!(d <= 3, "depth {d} exceeds bound");
            max_depth = max_depth.max(d);
        }
        assert!(
            max_depth >= 2,
            "recursion never fired (max depth {max_depth})"
        );
    }
}
