//! Deterministic case runner: seeds from the test name, generates
//! `config.cases` inputs, and panics with a reproducible case number on the
//! first failure (no shrinking).

/// Runner configuration. Only `cases` is honoured; the real crate's other
/// knobs are absent because no test in this workspace sets them.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be regenerated.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generation RNG (xoshiro256** seeded through SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `0..bound`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Execute `config.cases` passing cases of `case`, regenerating rejected
/// inputs, and panic on the first failing case.
pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let seed = fnv1a(name.as_bytes());
    let mut rng = TestRng::from_seed(seed);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases.max(64)) * 16;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(what)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: too many rejected inputs ({rejected}) — last: {what}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed after {passed} passing case(s) \
                     (deterministic seed {seed:#018x}):\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_counts_passes() {
        let mut seen = 0;
        run("counts", &ProptestConfig::with_cases(10), |_| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn runner_regenerates_rejects() {
        let mut calls = 0;
        run("rejects", &ProptestConfig::with_cases(5), |rng| {
            calls += 1;
            if rng.next_bool() {
                Err(TestCaseError::reject("odd"))
            } else {
                Ok(())
            }
        });
        assert!(calls >= 5);
    }

    #[test]
    #[should_panic(expected = "property `fails` failed")]
    fn runner_panics_on_failure() {
        run("fails", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
