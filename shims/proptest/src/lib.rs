//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the API subset its property tests consume: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! integer-range and tuple strategies, `&str` regex-lite string strategies,
//! [`collection::vec`], `any::<T>()`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case panics with the generated-case number
//!   and the test's deterministic seed; rerunning reproduces it exactly.
//! - **Deterministic seeding.** The RNG seed is derived from the test name,
//!   so runs are reproducible without a `proptest-regressions` file
//!   (existing regression files are ignored).
//! - **Recursion depth** in `prop_recursive` honours the `depth` argument
//!   but treats the size/branch hints as advisory only.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

mod string;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Build a union strategy over equally weighted arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Reject the current test case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Fail the current test case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Define property tests. Mirrors the real macro's surface syntax:
/// an optional `#![proptest_config(...)]` inner attribute followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run(stringify!($name), &config, |__pt_rng| {
                    $(let $p = $crate::strategy::Strategy::gen_value(&($s), __pt_rng);)+
                    {
                        $body
                    }
                    Ok(())
                });
            }
        )*
    };
}
