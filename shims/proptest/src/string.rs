//! Regex-lite string generation for `&str` strategies.
//!
//! Supports exactly the pattern features the workspace's tests use:
//! literal characters, `[...]` character classes containing literals and
//! `a-z` style ranges, and `{n}` / `{lo,hi}` repetition of the preceding
//! atom. Anything fancier panics loudly at generation time.

use crate::test_runner::TestRng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in `{pattern}`");
                i = close + 1;
                set
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' => {
                panic!(
                    "unsupported regex feature `{}` in pattern `{pattern}`",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            min <= max,
            "bad repetition `{{{min},{max}}}` in `{pattern}`"
        );
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..count {
            out.push(atom.choices[rng.below(atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier_matches_shape() {
        let mut rng = TestRng::from_seed(31);
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(32);
        let s = generate("x[01]{3}y", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }
}
