//! `proptest::collection::vec` — vectors of strategy-generated elements
//! with exact or ranged lengths.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Sizes accepted by [`vec`]: an exact length or a half-open/inclusive range.
pub trait SizeRange {
    /// Inclusive `(lo, hi)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.below(self.hi - self.lo + 1);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length
/// falls within `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(21);
        let ranged = vec(any::<u8>(), 1..5);
        let exact = vec(0u32..4, 6usize);
        for _ in 0..200 {
            let a = ranged.gen_value(&mut rng);
            assert!((1..5).contains(&a.len()));
            let b = exact.gen_value(&mut rng);
            assert_eq!(b.len(), 6);
            assert!(b.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::from_seed(22);
        let s = vec(vec(any::<u8>(), 1..16), 1..24);
        let v = s.gen_value(&mut rng);
        assert!(!v.is_empty());
        assert!(v.iter().all(|inner| (1..16).contains(&inner.len())));
    }
}
