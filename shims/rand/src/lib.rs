//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the *exact* API subset it consumes: [`RngCore`],
//! [`Rng::gen_range`] over integer ranges, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and emphatically **not**
//! cryptographically secure (the real `StdRng` is a CSPRNG; nothing in this
//! workspace relies on that property — all uses are seeded simulations and
//! tests).

/// Core random-number generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Convenience extensions, mirroring the subset of `rand::Rng` in use.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Mirrors `rand::Rng::gen_bool`:
    /// panics unless `0.0 <= p <= 1.0`. Sampling maps one `next_u64`
    /// draw onto the unit interval, so a given seed yields the same
    /// decision sequence regardless of platform float quirks.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random bits give an exact dyadic rational in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types uniformly samplable from ranges. The generic `SampleRange`
/// impls below are blanket impls over this trait (mirroring the real
/// crate's `SampleUniform`) so that unsuffixed literals like `0..100` unify
/// with the surrounding expected type instead of defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_u128(self) -> u128;
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                // Order-preserving map into u128 (offset for signed types).
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u128
            }
            fn from_u128(v: u128) -> Self {
                (v as i128).wrapping_add(<$t>::MIN as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        T::from_u128(lo + u128::from(rng.next_u64()) % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_u128(lo + u128::from(rng.next_u64()) % (hi - lo + 1))
    }
}

/// Seedable generators, mirroring the subset of `rand::SeedableRng` in use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u16 = rng.gen_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&x));
            let y: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let z: usize = rng.gen_range(0..100);
            assert!(z < 100);
        }
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0), "p=0 never fires");
            assert!(rng.gen_bool(1.0), "p=1 always fires");
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((800..1200).contains(&hits), "p=0.1 rate off: {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn gen_bool_rejects_out_of_range() {
        StdRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
