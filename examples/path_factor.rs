//! UC2 + UC3: path evidence as an authentication factor and as an
//! authorization tag (DDoS mitigation).
//!
//! A user enrolls their "home path" through the network. Later, a login
//! from the same path scores 1.0 as a second factor, while a login from
//! elsewhere (or with a forged chain) scores low. Then, under DDoS, an
//! evidence gate drops all traffic lacking valid path evidence.
//!
//! Run with: `cargo run --example path_factor`

use pda_core::prelude::*;
use pda_pera::evidence::EvidenceRecord;

fn attested_chain(n_switches: usize, nonce: Nonce) -> (Vec<EvidenceRecord>, pda_netsim::Simulator) {
    let config = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let mut net = linear_path(n_switches, &config, &[]);
    net.send_attested(nonce, EvidenceMode::InBand, b"loginpkt");
    let chain = net.server_chains()[0].chain.clone();
    (chain, net.sim)
}

fn main() {
    // ---- UC2: authentication factor -------------------------------
    // Enrollment: the bank records the hop sequence of the user's home
    // path (operator pseudonyms would be used in practice).
    let (home_chain, sim) = attested_chain(4, Nonce(1));
    let enrolled: Vec<String> = home_chain.iter().map(|r| r.switch.clone()).collect();
    println!("enrolled home path: {enrolled:?}");

    // Later login, same path: strong match.
    let (login_chain, _) = attested_chain(4, Nonce(2));
    let score = uc2_path_authentication(&login_chain, &enrolled, &sim.registry, Nonce(2));
    println!(
        "same-path login:   match={:.2} valid={} → {}",
        score.path_match,
        score.chain_valid,
        if score.acceptable(0.75) {
            "ACCEPT as 2nd factor"
        } else {
            "REJECT"
        }
    );

    // Login via a shorter, different path: weak match.
    let (other_chain, other_sim) = attested_chain(2, Nonce(3));
    let score = uc2_path_authentication(&other_chain, &enrolled, &other_sim.registry, Nonce(3));
    println!(
        "foreign-path login: match={:.2} valid={} → {}",
        score.path_match,
        score.chain_valid,
        if score.acceptable(0.75) {
            "ACCEPT as 2nd factor"
        } else {
            "REJECT"
        }
    );

    // A forged chain (tampered program digest) fails validity outright.
    let mut forged = login_chain.clone();
    forged[1].details[0].1 = Digest::of(b"fabricated");
    let score = uc2_path_authentication(&forged, &enrolled, &sim.registry, Nonce(2));
    println!(
        "forged-chain login: match={:.2} valid={} → REJECT",
        score.path_match, score.chain_valid
    );

    // ---- UC3: DDoS mitigation gate --------------------------------
    // "While under attack, a network could drop traffic for which it
    // lacks path-based evidence."
    let config = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let net = linear_path(3, &config, &[]);
    let golden = enroll_golden(&net.sim, &[DetailLevel::Hardware, DetailLevel::Program]);
    let mut gate = EvidenceGate::new(golden, net.sim.registry);

    // Legitimate clients present fresh, valid chains; the botnet sends
    // bare packets (it cannot forge switch signatures).
    let mut legit_admitted = 0;
    for i in 0..20u64 {
        let (chain, _) = attested_chain(3, Nonce(1000 + i));
        // Re-keyed sims share switch names and seeds, so the gate's
        // registry verifies them.
        if gate.admit(Some(&chain), Nonce(1000 + i)) {
            legit_admitted += 1;
        }
    }
    let mut attack_admitted = 0;
    for _ in 0..200 {
        if gate.admit(None, Nonce(0)) {
            attack_admitted += 1;
        }
    }
    println!(
        "\nDDoS gate: {legit_admitted}/20 legitimate flows admitted, \
         {attack_admitted}/200 attack packets admitted"
    );
    println!(
        "gate counters: admitted={} rejected={}",
        gate.admitted, gate.rejected
    );
}
