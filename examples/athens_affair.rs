//! The Athens Affair, replayed (paper §1 and UC1).
//!
//! A telco-like chain of programmable switches forwards "voice" traffic.
//! An insider patches the transit switch with a wiretap program that
//! duplicates streams of targeted subscribers — forwarding behaviour is
//! untouched, so the operator sees nothing. With PERA attestation the
//! swap is caught on the next attested packet, and out-of-band evidence
//! lets the operator audit *when* the switch's program digest changed.
//!
//! Run with: `cargo run --example athens_affair`

use pda_core::prelude::*;
use pda_dataplane::programs;
use pda_netsim::DeviceKind;

fn main() {
    let config = PeraConfig::default()
        .with_details(&[DetailLevel::Hardware, DetailLevel::Program])
        .with_sampling(Sampling::PerPacket);
    // client — sw1 (access) — sw2 (transit) — sw3 (core) — server
    let mut net = linear_path(3, &config, &[]);
    let golden = enroll_golden(&net.sim, &[DetailLevel::Hardware, DetailLevel::Program]);
    let appraiser = net.appraiser;

    // Day 0: the operator's scheduled attestation sweep — evidence is
    // collected out-of-band at the appraiser (Fig. 2's OOB variant).
    net.send_attested(
        Nonce(100),
        EvidenceMode::OutOfBand { appraiser },
        b"voicecal",
    );
    let day0 = net.sim.evidence_at(appraiser).to_vec();
    assert!(appraise_chain(&day0, &net.sim.registry, &golden, Nonce(100), true).is_ok());
    println!("day 0 sweep: {} hops attested clean", day0.len());

    // Night: the insider activates the dormant lawful-intercept path on
    // the transit switch, targeting subscriber 10.0.0.1.
    let sw2 = net.sim.topo.by_name("sw2").unwrap();
    if let DeviceKind::Pera(sw) = &mut net.sim.topo.nodes[sw2].kind {
        sw.load_program(programs::rogue_wiretap(&[(0, 0, 1)], &[0x0a00_0001], 31));
        println!("(insider swapped sw2's program; forwarding unchanged)");
    }

    // The tapped call still flows normally — the victim cannot tell.
    net.send_plain(b"voicecal");
    println!(
        "tapped call delivered normally ({} delivered, {} dropped)",
        net.sim.stats.delivered, net.sim.stats.dropped
    );

    // Day 1: the next sweep. The appraiser compares sw2's attested
    // program digest to the golden value and raises the alarm.
    net.send_attested(
        Nonce(101),
        EvidenceMode::OutOfBand { appraiser },
        b"voicecal",
    );
    let all = net.sim.evidence_at(appraiser);
    let day1 = &all[day0.len()..];
    match appraise_chain(day1, &net.sim.registry, &golden, Nonce(101), true) {
        Ok(()) => println!("BUG: wiretap not detected"),
        Err(failures) => {
            println!("day 1 sweep: ALARM —");
            for f in &failures {
                println!("  {f}");
            }
        }
    }

    // Epilogue: the paper's §4.2 analysis, mechanized. Without
    // sequenced measurements (eq 1) the insider could have hidden by
    // corrupt-and-repair; with sequencing (eq 2) only a mid-protocol
    // corruption survives.
    let eq1 = parse_request("*bank : @ks [av us bmon] +~+ @us [bmon us exts]").unwrap();
    let eq2 = parse_request("*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]").unwrap();
    let adversary = AdversaryModel::controlling(&["us"]);
    println!(
        "\nCopland analysis — eq (1): {}",
        analyze(&eq1, &adversary, "exts").verdict
    );
    println!(
        "Copland analysis — eq (2): {}",
        analyze(&eq2, &adversary, "exts").verdict
    );
}
