//! The closed SDN→attestation loop: a reviewed network-wide NetKAT
//! policy is sliced per switch, compiled into dataplane programs, and
//! deployed; the switches then attest the digests of exactly those
//! compiled programs — so the relying party can check not just "some
//! vetted program" but *the compiled form of the reviewed policy*.
//!
//! Run with: `cargo run --example sdn_loop`

use pda_core::prelude::*;
use pda_hybrid::nkcompile::compile;
use pda_netkat::ast::{Field, Policy, Pred};
use pda_netkat::specialize::slice_for_switch;
use pda_netsim::sim::Simulator;
use pda_netsim::{DeviceKind, SimPacket, Topology};

fn main() {
    // 1. The reviewed policy, written once for the whole network:
    //    sw1 forwards; sw2 embargoes src 0xbad and forwards the rest.
    let network = Policy::filter(Pred::test(Field::Switch, 1))
        .seq(Policy::assign(Field::Port, 1))
        .union(
            Policy::filter(Pred::test(Field::Switch, 2).and(Pred::test(Field::Src, 0xbad)))
                .seq(Policy::drop()),
        )
        .union(
            Policy::filter(Pred::test(Field::Switch, 2).and(Pred::test(Field::Src, 0xbad).not()))
                .seq(Policy::assign(Field::Port, 1)),
        );
    println!("network policy: {network}");

    // 2. Slice per switch (partial evaluation on sw) and compile.
    let slice1 = slice_for_switch(&network, 1);
    let slice2 = slice_for_switch(&network, 2);
    println!("\nslice for sw1:  {slice1}");
    println!("slice for sw2:  {slice2}");
    let prog1 = compile(&slice1, "sw1_policy").expect("deterministic slice");
    let prog2 = compile(&slice2, "sw2_policy").expect("deterministic slice");
    println!("\ncompiled digests (golden values for the appraiser):");
    println!("  sw1: {}", prog1.digest());
    println!("  sw2: {}", prog2.digest());
    let goldens = [prog1.digest(), prog2.digest()];

    // 3. Deploy onto PERA switches in a simulated network.
    let config = PeraConfig::default()
        .with_details(&[DetailLevel::Program])
        .with_sampling(Sampling::PerPacket);
    let mut topo = Topology::new();
    let client = topo.add("client", DeviceKind::Host);
    let s1 = topo.add(
        "sw1",
        DeviceKind::Pera(Box::new(PeraSwitch::new(
            "sw1",
            "hw1",
            prog1,
            config.clone(),
        ))),
    );
    let s2 = topo.add(
        "sw2",
        DeviceKind::Pera(Box::new(PeraSwitch::new("sw2", "hw2", prog2, config))),
    );
    let server = topo.add("server", DeviceKind::Host);
    topo.link(client, 1, s1, 0, 1_000);
    topo.link(s1, 1, s2, 0, 1_000);
    topo.link(s2, 1, server, 0, 1_000);
    let mut sim = Simulator::new(topo);

    // 4. Traffic: allowed and embargoed.
    let ok = pda_netsim::test_packet(0x0001, 0x2, 443, b"allowed!");
    let bad = pda_netsim::test_packet(0x0bad, 0x2, 443, b"embargo!");
    sim.inject(
        0,
        client,
        1,
        SimPacket::attested(ok, client, Nonce(1), EvidenceMode::InBand),
    );
    sim.inject(
        10,
        client,
        1,
        SimPacket::attested(bad, client, Nonce(2), EvidenceMode::InBand),
    );
    sim.run();
    println!(
        "\ntraffic: {} delivered, {} dropped (the embargoed packet died at sw2's compiled slice)",
        sim.stats.delivered, sim.stats.dropped
    );

    // 5. The delivered packet's chain attests the compiled digests.
    let delivery = sim
        .deliveries
        .iter()
        .find(|d| d.node == server)
        .expect("allowed packet delivered");
    let chain = &delivery.packet.attest.as_ref().unwrap().chain;
    println!("\nevidence chain at the server:");
    for (r, golden) in chain.iter().zip(&goldens) {
        let attested = r.detail(DetailLevel::Program).unwrap();
        println!(
            "  {}: attested {} — {}",
            r.switch,
            attested.short(),
            if attested == *golden {
                "matches the reviewed policy's compiled form ✓"
            } else {
                "MISMATCH"
            }
        );
    }
    assert_eq!(verify_chain(chain, &sim.registry, Nonce(1), true), Ok(()));
    println!("\nchain signatures + linkage verify ✓");
}
