//! A tour of the three policy languages: Copland (§4.2), NetKAT (used
//! for reachability), and their network-aware hybrid (§5.1) — ending
//! with Table 1's AP1 compiled onto a concrete path and serialized into
//! the §5.2 options header.
//!
//! Run with: `cargo run --example policy_tour`

use pda_core::prelude::*;
use pda_hybrid::wire;
use pda_netkat::ast::{Field, Packet, Policy, Pred};
use pda_netkat::reach::{link, switches_along, witness_path};
use std::collections::BTreeSet;

fn main() {
    // ---- 1. Copland ------------------------------------------------
    let eq2 = parse_request("*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]")
        .expect("eq (2) parses");
    println!("Copland eq (2):   {}", pretty_request(&eq2));
    println!("evidence shape:   {}", eval_request(&eq2));
    let adversary = AdversaryModel::controlling(&["us"]);
    let analysis = analyze(&eq2, &adversary, "exts");
    println!("trust analysis:   {}", analysis.verdict);
    if let Some(s) = &analysis.best_strategy {
        println!(
            "  cheapest evasion: {} corruptions ({} recent), {} repairs",
            s.corruptions, s.recent_corruptions, s.repairs
        );
    }

    // ---- 2. NetKAT -------------------------------------------------
    // Encode a 4-switch line and ask which path login traffic takes.
    let step = Policy::assign(Field::Port, 1).seq(Policy::any([
        link(1, 1, 2, 0),
        link(2, 1, 3, 0),
        link(3, 1, 4, 0),
    ]));
    let init = BTreeSet::from([Packet::of(&[(Field::Switch, 1), (Field::Dst, 443)])]);
    let path = witness_path(&step, &init, &Pred::test(Field::Switch, 4)).expect("reachable");
    println!("\nNetKAT witness:   switches {:?}", switches_along(&path));

    // ---- 3. Network-aware Copland (Table 1, AP1) -------------------
    let ap1 = parse_hybrid(
        "*bank<n, X> : forall hop, client : \
         (@hop [K |> attest(n, X) -> !] -+> @Appraiser [appraise -> store(n)]) \
         *=> @client [K |> @ks [av us bmon -> !] -<- @us [bmon us exts -> !]]",
    )
    .expect("AP1 parses");
    println!(
        "\nAP1 parsed: {} clauses, vars {:?}",
        ap1.body.clause_count(),
        ap1.body.place_vars()
    );

    // Deployment view of the NetKAT path: sw2 is legacy (an NE).
    let view = vec![
        NodeInfo::pera("sw1"),
        NodeInfo::legacy("sw2"),
        NodeInfo::pera("sw3"),
        NodeInfo::pera("sw4"),
        NodeInfo::pera("client-laptop"),
    ];
    let resolved = resolve(
        &ap1,
        &view,
        &[("n", "0x2a"), ("X", "program_digest")],
        Composition::Chained,
    )
    .expect("resolves onto the path");
    println!("bindings:         {:?}", resolved.bindings);
    println!("skipped (NE):     {:?}", resolved.skipped);
    println!("concrete Copland: {}", pretty_request(&resolved.request));

    // ---- 4. Wire format (§5.2) -------------------------------------
    let wire_policy = wire::WirePolicy {
        nonce: 0x2a,
        flags: wire::Flags {
            in_band_evidence: true,
        },
        directives: resolved.directives,
    };
    let bytes = wire::encode(&wire_policy);
    println!(
        "\noptions header:   {} bytes for {} directives",
        bytes.len(),
        wire_policy.directives.len()
    );
    let decoded = wire::decode(&bytes).expect("round-trips");
    assert_eq!(decoded, wire_policy);
    println!("decode(encode(p)) == p ✓");
}
