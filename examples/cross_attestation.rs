//! UC5: cross-referenced attestation — composing host-based and
//! network-based evidence.
//!
//! The paper: "TLS packets that were produced by a verified
//! implementation could be allowed to leave the network, while packets
//! produced by un-verified implementations are blocked." Here the
//! host-side Copland appraisal (the §4.2 bank example) is composed with
//! the network path chain; egress is cleared only when both pass.
//!
//! Run with: `cargo run --example cross_attestation`

use pda_copland::ast::examples as copland_examples;
use pda_copland::evidence::eval_request;
use pda_core::prelude::*;
use pda_ra::appraise::appraise;

fn host_appraisal(corrupt_stack: bool) -> pda_ra::appraise::AppraisalResult {
    // Host-side: kernel av measures the measurer, which measures the
    // TLS stack (standing in for `exts` of eq (2)).
    let mut env = Environment::new();
    env.add_place(PlaceRuntime::new("bank"));
    env.add_place(PlaceRuntime::new("ks").with_component("av", b"av-v1"));
    env.add_place(
        PlaceRuntime::new("us")
            .with_component("bmon", b"bmon-v1")
            .with_component("exts", b"verified-tls-v3"),
    );
    if corrupt_stack {
        env.place_mut("us").unwrap().corrupt("exts");
    }
    let req = copland_examples::bank_eq2();
    let shape = eval_request(&req);
    let report = run_request(&req, &mut env, None).expect("protocol runs");
    appraise(&report.evidence, &shape, &env, None)
}

fn network_chain(
    nonce: Nonce,
) -> (
    Vec<pda_pera::evidence::EvidenceRecord>,
    pda_netsim::Simulator,
    GoldenStore,
) {
    let config = PeraConfig::default().with_sampling(Sampling::PerPacket);
    let mut net = linear_path(3, &config, &[]);
    let golden = enroll_golden(&net.sim, &[DetailLevel::Hardware, DetailLevel::Program]);
    net.send_attested(nonce, EvidenceMode::InBand, b"tls-rec!");
    let chain = net.server_chains()[0].chain.clone();
    (chain, net.sim, golden)
}

fn main() {
    // Case 1: verified TLS stack + clean path → egress allowed.
    let host = host_appraisal(false);
    let (chain, sim, golden) = network_chain(Nonce(5));
    let verdict = uc5_cross_attestation(&host, &chain, &sim.registry, &golden, Nonce(5));
    println!(
        "verified stack, clean path:  host_ok={} network_ok={} → {}",
        verdict.host_ok,
        verdict.network_ok,
        if verdict.cleared() {
            "ALLOW egress"
        } else {
            "BLOCK egress"
        }
    );
    assert!(verdict.cleared());

    // Case 2: tampered TLS stack (exfiltration attempt) → blocked even
    // though the path is clean. This is the paper's exfiltration check:
    // "whether outward traffic patterns have been authorized by an
    // unmodified application."
    let host = host_appraisal(true);
    let verdict = uc5_cross_attestation(&host, &chain, &sim.registry, &golden, Nonce(5));
    println!(
        "tampered stack, clean path:  host_ok={} network_ok={} → {}",
        verdict.host_ok,
        verdict.network_ok,
        if verdict.cleared() {
            "ALLOW egress"
        } else {
            "BLOCK egress"
        }
    );
    assert!(!verdict.cleared());

    // Case 3: verified stack but stale network evidence (wrong nonce —
    // e.g. a replayed chain) → blocked.
    let host = host_appraisal(false);
    let verdict = uc5_cross_attestation(&host, &chain, &sim.registry, &golden, Nonce(6));
    println!(
        "verified stack, stale chain: host_ok={} network_ok={} → {}",
        verdict.host_ok,
        verdict.network_ok,
        if verdict.cleared() {
            "ALLOW egress"
        } else {
            "BLOCK egress"
        }
    );
    assert!(!verdict.cleared());

    // Trusted redaction (the compliance-officer flow): hand the
    // regulator only the hash of the detailed evidence. Copland's `#`
    // gives exactly this: the digest commits to the details without
    // disclosing them.
    let full = &chain[0];
    println!(
        "\nredacted disclosure for compliance: switch evidence digest {} (details withheld)",
        full.chain
    );
}
