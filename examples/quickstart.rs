//! Quickstart: attest a path of programmable switches end-to-end.
//!
//! Builds a 3-switch network, sends one attested packet, verifies the
//! in-band evidence chain, then demonstrates UC1 by hot-swapping a
//! rogue program into the middle switch and watching appraisal fail.
//!
//! Run with: `cargo run --example quickstart`

use pda_core::prelude::*;
use pda_dataplane::programs;
use pda_netsim::DeviceKind;

fn main() {
    // 1. A linear network: client — sw1 — sw2 — sw3 — server, every
    //    switch a PERA device attesting hardware + program per packet.
    let config = PeraConfig::default()
        .with_details(&[DetailLevel::Hardware, DetailLevel::Program])
        .with_sampling(Sampling::PerPacket);
    let mut net = linear_path(3, &config, &[]);

    // 2. Trusted setup: the operator enrolls each switch's golden
    //    hardware identity and program digest with the appraiser.
    let golden = enroll_golden(&net.sim, &[DetailLevel::Hardware, DetailLevel::Program]);

    // 3. The relying party sends traffic carrying an attestation
    //    request (nonce 7); each hop appends signed evidence in-band.
    net.send_attested(Nonce(7), EvidenceMode::InBand, b"payload!");
    let chains = net.server_chains();
    let chain = &chains[0].chain;
    println!("received {} evidence records:", chain.len());
    for r in chain {
        println!("  {r}");
    }

    // 4. Appraise: signatures, hash-chain linkage, nonce, and golden
    //    program digests all check out.
    match uc1_configuration_assurance(chain, &net.sim.registry, &golden, Nonce(7)) {
        Ok(hops) => println!("appraisal PASSED: {hops} hops attested their vetted programs"),
        Err(failures) => {
            println!("appraisal FAILED:");
            for f in &failures {
                println!("  {f}");
            }
        }
    }

    // 5. The UC1 attack: swap sw2's forwarder for a wiretap variant
    //    that forwards identically (invisible to traffic!) but has a
    //    different program digest.
    let sw2 = net.sim.topo.by_name("sw2").expect("sw2 exists");
    if let DeviceKind::Pera(sw) = &mut net.sim.topo.nodes[sw2].kind {
        sw.load_program(programs::rogue_wiretap(&[(0, 0, 1)], &[0x0a00_0001], 31));
    }
    net.send_attested(Nonce(8), EvidenceMode::InBand, b"payload!");
    let chains = net.server_chains();
    let chain = &chains[1].chain;

    match uc1_configuration_assurance(chain, &net.sim.registry, &golden, Nonce(8)) {
        Ok(_) => println!("BUG: rogue program not detected"),
        Err(failures) => {
            println!("rogue program detected, as the paper promises:");
            for f in &failures {
                println!("  {f}");
            }
        }
    }
}
