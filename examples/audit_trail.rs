//! UC4: evidence as documentation — the malware-C2 audit trail.
//!
//! A PERA switch runs `c2scan_v1.p4`, fingerprinting command-and-control
//! beacons in the dataplane (AP2's `*scanner⟨P⟩` policy). Every hit is
//! attested and appended to a Merkle-committed audit trail: sub-case (A)
//! justifies applying for a court order; sub-case (B) proves afterwards
//! that the takedown action was limited to what the order authorized.
//!
//! Run with: `cargo run --example audit_trail`

use pda_core::prelude::*;
use pda_crypto::keyreg::{KeyRegistry, PrincipalId};
use pda_dataplane::parser::build_udp_packet;
use pda_dataplane::programs;
use pda_hybrid::parser::parse_hybrid;
use pda_hybrid::resolve::{resolve as resolve_hybrid, Composition as HComposition, NodeInfo};

fn main() {
    // The AP2 policy from Table 1, verbatim concrete syntax.
    let ap2 = parse_hybrid(
        "*scanner<P> : @scanner [P |> attest(P) -> !] -+> @Appraiser [appraise -> store]",
    )
    .expect("AP2 parses");
    println!("AP2 policy: switch is the relying party, test P guards the attestation");

    // Resolve it: the scanner node passes test P (= c2_beacon seen).
    let path = [NodeInfo::pera("scanner").with_test("c2_beacon")];
    let resolved = resolve_hybrid(&ap2, &path, &[("P", "c2_beacon")], HComposition::Chained)
        .expect("resolves");
    println!(
        "compiled to {} directives: first runs on {:?} guarded by {:?}\n",
        resolved.directives.len(),
        resolved.directives[0].node,
        resolved.directives[0].guard
    );

    // The scanner dataplane: C2 beacon signature = first 8 payload bytes.
    let beacon = u64::from_be_bytes(*b"C2BEACON");
    let mut scanner = PeraSwitch::new(
        "scanner",
        "tofino-sim-edge",
        programs::c2_scanner(&[beacon], 1, 7),
        PeraConfig::default()
            .with_details(&[DetailLevel::Program, DetailLevel::ProgState])
            .with_sampling(Sampling::PerPacket),
    );
    let mut registry = KeyRegistry::new();
    registry.register(PrincipalId::new("scanner"), scanner.verify_key(0));

    // Traffic: ordinary flows with beacons mixed in.
    let mut trail = AuditTrail::new();
    let mut prev = Digest::ZERO;
    let mut hits = 0;
    for i in 0..50u32 {
        let payload: &[u8] = if i % 10 == 3 {
            b"C2BEACON"
        } else {
            b"ORDINARY"
        };
        let pkt = build_udp_packet(0xa, 0xb, 0x0a00_0000 + i, 0x0808_0808, 4444, 8080, payload);
        let out = scanner
            .process_packet(&pkt, 0, Some((Nonce(42), prev)))
            .expect("parses");
        if out.forward.phv.get("meta.c2_hit") == 1 {
            hits += 1;
            let record = out.evidence.expect("per-packet attestation");
            prev = record.chain;
            trail.append(
                &record,
                format!("beacon from 10.0.0.{i} mirrored to analysis port"),
            );
        }
    }
    println!("scanner flagged {hits} beacons out of 50 packets");

    // Sub-case (A): commit the trail; its root goes into the court
    // filing.
    let commitment = trail.commit();
    println!(
        "audit commitment: root={} over {} entries",
        commitment.root, commitment.entries
    );

    // Sub-case (B): after the takedown, prove that entry #2 (and only
    // what the order covered) is in the committed trail.
    let (entry, proof) = trail.prove(2).expect("entry exists");
    assert!(AuditTrail::verify(&commitment, &entry, &proof));
    println!("membership proof for takedown action verifies against the filed root");

    // Tampering with the entry after the fact is detectable.
    assert!(!AuditTrail::verify(&commitment, b"revised history", &proof));
    println!("post-hoc revision of the trail is rejected");
}
